//! AVX2+FMA SIMD kernels for squared Euclidean distance and LB_Keogh.
//!
//! The paper uses 256-bit SIMD for "the computation of the Euclidean
//! distance functions, as well as ... the conditional branch calculations
//! during the computation of the lower bound distances" (§II-A). This
//! module holds the real-distance kernels *and* the branchless LB_Keogh
//! envelope kernels; the SAX mindist gather kernel lives in `messi-sax`
//! next to the breakpoint tables.
//!
//! # Safety contract
//!
//! Every `unsafe fn` in `avx` compiles with `#[target_feature]` enabled
//! and is undefined behaviour on a CPU without AVX2+FMA. The contract for
//! callers is:
//!
//! 1. **Gate every call on [`simd_available`]** (directly or through
//!    `Kernel::uses_simd`). The check is cached in an atomic after the
//!    first query, so gating is free on the hot path.
//! 2. **Slices passed to a kernel must satisfy its length preconditions**
//!    (equal lengths; checked by debug assertions, relied upon by the
//!    pointer arithmetic in release builds).
//! 3. Inside the kernels, every intrinsic use sits in an explicit
//!    `unsafe {}` block with a `SAFETY:` comment
//!    (`deny(unsafe_op_in_unsafe_fn)` enforces this), and memory is only
//!    touched through `loadu`/unaligned-tolerant operations within the
//!    bounds of the argument slices.
//!
//! Every kernel has a *bit-identical* safe scalar twin next to its
//! dispatcher ([`super::euclidean`], [`super::lb_keogh`]): the twin
//! mirrors the kernel's 8-lane blocking, its fused multiply-add (via
//! [`f32::mul_add`], which Rust guarantees rounds once, exactly like the
//! `vfmadd` instruction), and the reduction order of `avx::hsum256` —
//! so forced-scalar and forced-SIMD runs return the same bits and the
//! kernel ablations compare work, not rounding. On non-x86_64 targets
//! this module reports SIMD as unavailable and the dispatchers always run
//! the scalar twins.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached result of CPU feature detection: 0 = unknown, 1 = no, 2 = yes.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX2+FMA kernels can run on this CPU (detection is cached).
///
/// Setting `MESSI_FORCE_SCALAR` to anything but `0` in the environment
/// reports SIMD as unavailable even on AVX2 hardware, forcing every
/// dispatcher onto the scalar twins process-wide (used by CI to keep the
/// scalar path green on any runner).
#[inline]
pub fn simd_available() -> bool {
    match SIMD_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let avail = !force_scalar() && detect();
            SIMD_STATE.store(if avail { 2 } else { 1 }, Ordering::Relaxed);
            avail
        }
    }
}

/// The `MESSI_FORCE_SCALAR` escape hatch (checked once, then cached in
/// [`SIMD_STATE`] alongside the CPU detection).
fn force_scalar() -> bool {
    std::env::var_os("MESSI_FORCE_SCALAR").is_some_and(|v| v != "0")
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// How many points each early-abandon check covers: the SIMD kernels test
/// the accumulated distance against the bound once per this many points.
/// 32 points = 4 AVX vectors, amortizing the horizontal sum.
pub const ABANDON_STRIDE: usize = 32;

/// Horizontal sum of 8 virtual lanes in the exact reduction order of
/// [`avx::hsum256`]: `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
///
/// The scalar twins accumulate into a `[f32; 8]` block and reduce through
/// this function so their final sums are bit-identical to the AVX
/// kernels' — same pairings, same order, same single rounding per add.
#[inline]
pub(crate) fn hsum_lanes(l: [f32; 8]) -> f32 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx {
    //! The actual AVX2 kernels. Callers must check [`super::simd_available`]
    //! first; the functions are `unsafe` because they compile with
    //! `target_feature` enabled. See the module docs for the full safety
    //! contract.

    use super::ABANDON_STRIDE;
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// Horizontal sum of an AVX 8-lane f32 vector.
    ///
    /// Reduction order (mirrored by the scalar [`super::hsum_lanes`]):
    /// lanes fold as `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
    ///
    /// # Safety
    ///
    /// Requires AVX on the executing CPU.
    #[inline]
    #[target_feature(enable = "avx")]
    unsafe fn hsum256(v: __m256) -> f32 {
        // Register-only intrinsics are safe inside a matching
        // #[target_feature] context (no memory access) — no unsafe
        // block needed even under `unsafe_op_in_unsafe_fn`.
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let sum4 = _mm_add_ps(lo, hi);
        let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
        let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 0b01));
        _mm_cvtss_f32(sum1)
    }

    /// Squared Euclidean distance, 8 lanes at a time with FMA.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA on the executing CPU. `a` and `b` must have equal
    /// lengths (checked by a debug assertion).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn ed_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let lanes = n / 8 * 8;
        // SAFETY: pointer arithmetic stays within the slices; loadu allows
        // unaligned access.
        unsafe {
            let mut acc = _mm256_setzero_ps();
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            let mut i = 0;
            while i < lanes {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                let d = _mm256_sub_ps(va, vb);
                acc = _mm256_fmadd_ps(d, d, acc);
                i += 8;
            }
            let mut sum = hsum256(acc);
            for j in lanes..n {
                let d = *pa.add(j) - *pb.add(j);
                sum += d * d;
            }
            sum
        }
    }

    /// Early-abandoning squared Euclidean distance.
    ///
    /// Returns the exact squared distance if it is `< bound`; otherwise
    /// returns a partial sum that is already `>= bound` (the scan stops as
    /// soon as the accumulated distance crosses the bound, checking every
    /// [`ABANDON_STRIDE`] points).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA on the executing CPU; `a.len() == b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn ed_sq_early_abandon(a: &[f32], b: &[f32], bound: f32) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        // SAFETY: as in `ed_sq`.
        unsafe {
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            let mut total = 0.0f32;
            let mut i = 0;
            // Blocks of ABANDON_STRIDE points (4 AVX vectors) between checks.
            while i + ABANDON_STRIDE <= n {
                let mut acc = _mm256_setzero_ps();
                let mut j = i;
                while j < i + ABANDON_STRIDE {
                    let va = _mm256_loadu_ps(pa.add(j));
                    let vb = _mm256_loadu_ps(pb.add(j));
                    let d = _mm256_sub_ps(va, vb);
                    acc = _mm256_fmadd_ps(d, d, acc);
                    j += 8;
                }
                total += hsum256(acc);
                if total >= bound {
                    return total;
                }
                i += ABANDON_STRIDE;
            }
            // Tail: whole vectors, then scalar remainder.
            let lanes = (n - i) / 8 * 8 + i;
            let mut acc = _mm256_setzero_ps();
            let mut j = i;
            while j < lanes {
                let va = _mm256_loadu_ps(pa.add(j));
                let vb = _mm256_loadu_ps(pb.add(j));
                let d = _mm256_sub_ps(va, vb);
                acc = _mm256_fmadd_ps(d, d, acc);
                j += 8;
            }
            total += hsum256(acc);
            for k in lanes..n {
                let d = *pa.add(k) - *pb.add(k);
                total += d * d;
            }
            total
        }
    }

    /// Squared LB_Keogh of `candidate` against the envelope
    /// `(lower, upper)`, 8 points at a time.
    ///
    /// The out-of-envelope excursion is computed branchlessly by clamping
    /// the candidate into the envelope (`min`/`max`) and squaring the
    /// residual: `d = c - min(max(c, L), U)` is positive above `U`,
    /// negative below `L`, zero inside — and `d²` is the LB_Keogh term in
    /// all three cases.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA on the executing CPU. All three slices must have
    /// equal lengths (checked by debug assertions).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn lb_keogh_sq(lower: &[f32], upper: &[f32], candidate: &[f32]) -> f32 {
        debug_assert_eq!(lower.len(), candidate.len());
        debug_assert_eq!(upper.len(), candidate.len());
        let n = candidate.len();
        let lanes = n / 8 * 8;
        // SAFETY: pointer arithmetic stays within the slices; loadu allows
        // unaligned access.
        unsafe {
            let mut acc = _mm256_setzero_ps();
            let pl = lower.as_ptr();
            let pu = upper.as_ptr();
            let pc = candidate.as_ptr();
            let mut i = 0;
            while i < lanes {
                let l = _mm256_loadu_ps(pl.add(i));
                let u = _mm256_loadu_ps(pu.add(i));
                let c = _mm256_loadu_ps(pc.add(i));
                let clamped = _mm256_min_ps(_mm256_max_ps(c, l), u);
                let d = _mm256_sub_ps(c, clamped);
                acc = _mm256_fmadd_ps(d, d, acc);
                i += 8;
            }
            let mut sum = hsum256(acc);
            for j in lanes..n {
                let c = *pc.add(j);
                let d = c - c.max(*pl.add(j)).min(*pu.add(j));
                sum += d * d;
            }
            sum
        }
    }

    /// Early-abandoning squared LB_Keogh: exact if `< bound`, otherwise
    /// some partial sum `>= bound`, checking every [`ABANDON_STRIDE`]
    /// points exactly like [`ed_sq_early_abandon`].
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA on the executing CPU; all slices equal length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn lb_keogh_sq_early_abandon(
        lower: &[f32],
        upper: &[f32],
        candidate: &[f32],
        bound: f32,
    ) -> f32 {
        debug_assert_eq!(lower.len(), candidate.len());
        debug_assert_eq!(upper.len(), candidate.len());
        let n = candidate.len();
        // SAFETY: as in `lb_keogh_sq`.
        unsafe {
            let pl = lower.as_ptr();
            let pu = upper.as_ptr();
            let pc = candidate.as_ptr();
            let mut total = 0.0f32;
            let mut i = 0;
            while i + ABANDON_STRIDE <= n {
                let mut acc = _mm256_setzero_ps();
                let mut j = i;
                while j < i + ABANDON_STRIDE {
                    let l = _mm256_loadu_ps(pl.add(j));
                    let u = _mm256_loadu_ps(pu.add(j));
                    let c = _mm256_loadu_ps(pc.add(j));
                    let clamped = _mm256_min_ps(_mm256_max_ps(c, l), u);
                    let d = _mm256_sub_ps(c, clamped);
                    acc = _mm256_fmadd_ps(d, d, acc);
                    j += 8;
                }
                total += hsum256(acc);
                if total >= bound {
                    return total;
                }
                i += ABANDON_STRIDE;
            }
            // Tail: whole vectors, then scalar remainder.
            let lanes = (n - i) / 8 * 8 + i;
            let mut acc = _mm256_setzero_ps();
            let mut j = i;
            while j < lanes {
                let l = _mm256_loadu_ps(pl.add(j));
                let u = _mm256_loadu_ps(pu.add(j));
                let c = _mm256_loadu_ps(pc.add(j));
                let clamped = _mm256_min_ps(_mm256_max_ps(c, l), u);
                let d = _mm256_sub_ps(c, clamped);
                acc = _mm256_fmadd_ps(d, d, acc);
                j += 8;
            }
            total += hsum256(acc);
            for k in lanes..n {
                let c = *pc.add(k);
                let d = c - c.max(*pl.add(k)).min(*pu.add(k));
                total += d * d;
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean::ed_sq_scalar;
    use crate::stats::approx_eq;

    fn pair(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).cos()).collect();
        (a, b)
    }

    #[test]
    fn detection_is_stable() {
        let first = simd_available();
        for _ in 0..3 {
            assert_eq!(simd_available(), first);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_matches_scalar_on_many_lengths() {
        if !simd_available() {
            eprintln!("skipping: no AVX2+FMA");
            return;
        }
        for n in [
            1usize, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 128, 255, 256, 1024,
        ] {
            let (a, b) = pair(n);
            let scalar = ed_sq_scalar(&a, &b);
            // SAFETY: guarded by simd_available().
            let simd = unsafe { avx::ed_sq(&a, &b) };
            assert!(
                approx_eq(scalar, simd, 1e-4),
                "n={n}: scalar={scalar} simd={simd}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_early_abandon_exact_when_below_bound() {
        if !simd_available() {
            return;
        }
        for n in [8usize, 32, 64, 100, 256] {
            let (a, b) = pair(n);
            let exact = ed_sq_scalar(&a, &b);
            // SAFETY: guarded by simd_available().
            let d = unsafe { avx::ed_sq_early_abandon(&a, &b, exact * 2.0 + 1.0) };
            assert!(approx_eq(exact, d, 1e-4), "n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_early_abandon_crosses_bound_when_abandoning() {
        if !simd_available() {
            return;
        }
        let (a, b) = pair(256);
        let exact = ed_sq_scalar(&a, &b);
        let bound = exact / 4.0;
        // SAFETY: guarded by simd_available().
        let d = unsafe { avx::ed_sq_early_abandon(&a, &b, bound) };
        assert!(d >= bound, "abandoned value {d} must be >= bound {bound}");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_zero_distance_for_identical_series() {
        if !simd_available() {
            return;
        }
        let (a, _) = pair(256);
        // SAFETY: guarded by simd_available().
        let d = unsafe { avx::ed_sq(&a, &a) };
        assert_eq!(d, 0.0);
    }

    /// Simple branchy LB_Keogh oracle for the AVX kernel tests.
    fn lb_keogh_oracle(lower: &[f32], upper: &[f32], candidate: &[f32]) -> f32 {
        candidate
            .iter()
            .zip(lower)
            .zip(upper)
            .map(|((&c, &l), &u)| {
                if c > u {
                    (c - u) * (c - u)
                } else if c < l {
                    (l - c) * (l - c)
                } else {
                    0.0
                }
            })
            .sum()
    }

    fn envelope_triplet(n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let lower: Vec<f32> = (0..n).map(|i| (i as f32 * 0.17).sin() - 0.4).collect();
        let upper: Vec<f32> = lower.iter().map(|l| l + 0.8).collect();
        let cand: Vec<f32> = (0..n).map(|i| (i as f32 * 0.29).cos() * 1.5).collect();
        (lower, upper, cand)
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_lb_keogh_matches_oracle_on_many_lengths() {
        if !simd_available() {
            return;
        }
        for n in [
            1usize, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 128, 255, 256, 1024,
        ] {
            let (lower, upper, cand) = envelope_triplet(n);
            let oracle = lb_keogh_oracle(&lower, &upper, &cand);
            // SAFETY: guarded by simd_available().
            let simd = unsafe { avx::lb_keogh_sq(&lower, &upper, &cand) };
            assert!(
                approx_eq(oracle, simd, 1e-4),
                "n={n}: oracle={oracle} simd={simd}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_lb_keogh_zero_inside_envelope() {
        if !simd_available() {
            return;
        }
        let (lower, upper, _) = envelope_triplet(100);
        let inside: Vec<f32> = lower
            .iter()
            .zip(&upper)
            .map(|(&l, &u)| (l + u) / 2.0)
            .collect();
        // SAFETY: guarded by simd_available().
        let d = unsafe { avx::lb_keogh_sq(&lower, &upper, &inside) };
        assert_eq!(d, 0.0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_lb_keogh_early_abandon_contract() {
        if !simd_available() {
            return;
        }
        let (lower, upper, cand) = envelope_triplet(256);
        let exact = lb_keogh_oracle(&lower, &upper, &cand);
        assert!(exact > 0.0);
        // SAFETY: guarded by simd_available().
        let below = unsafe { avx::lb_keogh_sq_early_abandon(&lower, &upper, &cand, exact / 8.0) };
        assert!(below >= exact / 8.0);
        // SAFETY: guarded by simd_available().
        let full = unsafe { avx::lb_keogh_sq_early_abandon(&lower, &upper, &cand, exact * 2.0) };
        assert!(approx_eq(full, exact, 1e-4));
    }
}
