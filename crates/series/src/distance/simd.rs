//! AVX2+FMA SIMD kernels for squared Euclidean distance.
//!
//! The paper uses 256-bit SIMD for "the computation of the Euclidean
//! distance functions, as well as ... the conditional branch calculations
//! during the computation of the lower bound distances" (§II-A). These are
//! the real-distance kernels; the branchless SIMD lower-bound kernel lives
//! in `messi-sax` next to the breakpoint tables.
//!
//! All kernels here have scalar equivalents in [`super::euclidean`]; the
//! dispatchers there pick between the two based on runtime CPU detection
//! (cached after the first query). On non-x86_64 targets this module
//! reports SIMD as unavailable and the dispatchers always run scalar code.

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached result of CPU feature detection: 0 = unknown, 1 = no, 2 = yes.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX2+FMA kernels can run on this CPU (detection is cached).
#[inline]
pub fn simd_available() -> bool {
    match SIMD_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let avail = detect();
            SIMD_STATE.store(if avail { 2 } else { 1 }, Ordering::Relaxed);
            avail
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// How many points each early-abandon check covers: the SIMD kernels test
/// the accumulated distance against the bound once per this many points.
/// 32 points = 4 AVX vectors, amortizing the horizontal sum.
pub const ABANDON_STRIDE: usize = 32;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx {
    //! The actual AVX2 kernels. Callers must check [`super::simd_available`]
    //! first; the functions are `unsafe` because they compile with
    //! `target_feature` enabled.

    use super::ABANDON_STRIDE;
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// Horizontal sum of an AVX 8-lane f32 vector.
    ///
    /// # Safety
    ///
    /// Requires AVX on the executing CPU.
    #[inline]
    #[target_feature(enable = "avx")]
    unsafe fn hsum256(v: __m256) -> f32 {
        // Register-only intrinsics are safe inside a matching
        // #[target_feature] context (no memory access).
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let sum4 = _mm_add_ps(lo, hi);
        let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
        let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 0b01));
        _mm_cvtss_f32(sum1)
    }

    /// Squared Euclidean distance, 8 lanes at a time with FMA.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA on the executing CPU. `a` and `b` must have equal
    /// lengths (checked by a debug assertion).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn ed_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let lanes = n / 8 * 8;
        // SAFETY: pointer arithmetic stays within the slices; loadu allows
        // unaligned access.
        unsafe {
            let mut acc = _mm256_setzero_ps();
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            let mut i = 0;
            while i < lanes {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                let d = _mm256_sub_ps(va, vb);
                acc = _mm256_fmadd_ps(d, d, acc);
                i += 8;
            }
            let mut sum = hsum256(acc);
            for j in lanes..n {
                let d = *pa.add(j) - *pb.add(j);
                sum += d * d;
            }
            sum
        }
    }

    /// Early-abandoning squared Euclidean distance.
    ///
    /// Returns the exact squared distance if it is `< bound`; otherwise
    /// returns a partial sum that is already `>= bound` (the scan stops as
    /// soon as the accumulated distance crosses the bound, checking every
    /// [`ABANDON_STRIDE`] points).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA on the executing CPU; `a.len() == b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn ed_sq_early_abandon(a: &[f32], b: &[f32], bound: f32) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        // SAFETY: as in `ed_sq`.
        unsafe {
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            let mut total = 0.0f32;
            let mut i = 0;
            // Blocks of ABANDON_STRIDE points (4 AVX vectors) between checks.
            while i + ABANDON_STRIDE <= n {
                let mut acc = _mm256_setzero_ps();
                let mut j = i;
                while j < i + ABANDON_STRIDE {
                    let va = _mm256_loadu_ps(pa.add(j));
                    let vb = _mm256_loadu_ps(pb.add(j));
                    let d = _mm256_sub_ps(va, vb);
                    acc = _mm256_fmadd_ps(d, d, acc);
                    j += 8;
                }
                total += hsum256(acc);
                if total >= bound {
                    return total;
                }
                i += ABANDON_STRIDE;
            }
            // Tail: whole vectors, then scalar remainder.
            let lanes = (n - i) / 8 * 8 + i;
            let mut acc = _mm256_setzero_ps();
            let mut j = i;
            while j < lanes {
                let va = _mm256_loadu_ps(pa.add(j));
                let vb = _mm256_loadu_ps(pb.add(j));
                let d = _mm256_sub_ps(va, vb);
                acc = _mm256_fmadd_ps(d, d, acc);
                j += 8;
            }
            total += hsum256(acc);
            for k in lanes..n {
                let d = *pa.add(k) - *pb.add(k);
                total += d * d;
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean::ed_sq_scalar;
    use crate::stats::approx_eq;

    fn pair(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).cos()).collect();
        (a, b)
    }

    #[test]
    fn detection_is_stable() {
        let first = simd_available();
        for _ in 0..3 {
            assert_eq!(simd_available(), first);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_matches_scalar_on_many_lengths() {
        if !simd_available() {
            eprintln!("skipping: no AVX2+FMA");
            return;
        }
        for n in [
            1usize, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 128, 255, 256, 1024,
        ] {
            let (a, b) = pair(n);
            let scalar = ed_sq_scalar(&a, &b);
            // SAFETY: guarded by simd_available().
            let simd = unsafe { avx::ed_sq(&a, &b) };
            assert!(
                approx_eq(scalar, simd, 1e-4),
                "n={n}: scalar={scalar} simd={simd}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_early_abandon_exact_when_below_bound() {
        if !simd_available() {
            return;
        }
        for n in [8usize, 32, 64, 100, 256] {
            let (a, b) = pair(n);
            let exact = ed_sq_scalar(&a, &b);
            // SAFETY: guarded by simd_available().
            let d = unsafe { avx::ed_sq_early_abandon(&a, &b, exact * 2.0 + 1.0) };
            assert!(approx_eq(exact, d, 1e-4), "n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_early_abandon_crosses_bound_when_abandoning() {
        if !simd_available() {
            return;
        }
        let (a, b) = pair(256);
        let exact = ed_sq_scalar(&a, &b);
        let bound = exact / 4.0;
        // SAFETY: guarded by simd_available().
        let d = unsafe { avx::ed_sq_early_abandon(&a, &b, bound) };
        assert!(d >= bound, "abandoned value {d} must be >= bound {bound}");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_zero_distance_for_identical_series() {
        if !simd_available() {
            return;
        }
        let (a, _) = pair(256);
        // SAFETY: guarded by simd_available().
        let d = unsafe { avx::ed_sq(&a, &a) };
        assert_eq!(d, 0.0);
    }
}
