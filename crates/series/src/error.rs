//! Error type shared by the series substrate.

use std::fmt;

/// Errors produced while building or validating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A series had a different length than the dataset's fixed length.
    LengthMismatch {
        /// The dataset's fixed series length.
        expected: usize,
        /// The offending series' length.
        got: usize,
    },
    /// The requested series length is zero or otherwise unusable.
    InvalidSeriesLength(usize),
    /// The flat buffer length is not a multiple of the series length.
    RaggedBuffer {
        /// Length of the flat value buffer.
        buffer_len: usize,
        /// The dataset's fixed series length.
        series_len: usize,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LengthMismatch { expected, got } => {
                write!(f, "series length mismatch: expected {expected}, got {got}")
            }
            Error::InvalidSeriesLength(n) => write!(f, "invalid series length {n}"),
            Error::RaggedBuffer {
                buffer_len,
                series_len,
            } => write!(
                f,
                "flat buffer of {buffer_len} values is not a multiple of series length {series_len}"
            ),
            Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::LengthMismatch {
            expected: 256,
            got: 128,
        };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("128"));
        let e = Error::RaggedBuffer {
            buffer_len: 10,
            series_len: 3,
        };
        assert!(e.to_string().contains("10"));
        let e = Error::InvalidSeriesLength(0);
        assert!(e.to_string().contains('0'));
        let e = Error::InvalidParameter("segments");
        assert!(e.to_string().contains("segments"));
    }
}
