//! Workload generators for the paper's three dataset families.
//!
//! §IV-A of the paper evaluates on (1) random-walk synthetic data — "a
//! random number is first drawn from a Gaussian distribution N(0,1), and
//! then at each time point a new number is drawn from this distribution
//! and added to the value of the last number" — (2) *Seismic*, 100M
//! seismic wave series from the IRIS repository, and (3) *SALD*,
//! neuroscience MRI series of length 128.
//!
//! The two real datasets are not redistributable, so this module provides
//! synthetic stand-ins whose *pruning behaviour* matches what the paper
//! reports (random walk prunes best; the real datasets prune worse, with
//! Seismic the hardest — Figs. 14, 16, 17). See `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! All generators are deterministic per `(seed, series_index)` and
//! generation is parallelized across all available cores.

pub mod queries;
pub mod random_walk;
pub mod rng;
pub mod sald;
pub mod seismic;

use crate::types::Dataset;
use crate::znorm::znormalize_in_place;

/// A deterministic generator of fixed-length series.
///
/// Implementations must be pure functions of `(self, index)` so that
/// datasets are identical regardless of generation order or parallelism.
pub trait SeriesGenerator: Sync {
    /// Length of every generated series.
    fn series_len(&self) -> usize;

    /// Writes series number `index` into `out` (`out.len() == series_len()`).
    /// The output is **not** z-normalized; the driver does that.
    fn generate_into(&self, index: u64, out: &mut [f32]);
}

/// The paper's three dataset families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Gaussian random walk (the paper's synthetic default, "Random").
    RandomWalk,
    /// Synthetic stand-in for the IRIS Seismic waveform dataset.
    Seismic,
    /// Synthetic stand-in for the SALD MRI dataset (length 128 in the paper).
    Sald,
}

impl DatasetKind {
    /// The series length the paper uses for this dataset family.
    pub fn paper_series_len(self) -> usize {
        match self {
            DatasetKind::RandomWalk | DatasetKind::Seismic => 256,
            DatasetKind::Sald => 128,
        }
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::RandomWalk => "Random",
            DatasetKind::Seismic => "Seismic",
            DatasetKind::Sald => "SALD",
        }
    }

    /// Builds the generator for this family with its paper series length.
    pub fn generator(self, seed: u64) -> Box<dyn SeriesGenerator + Send> {
        self.generator_with_len(seed, self.paper_series_len())
    }

    /// Builds the generator with an explicit series length.
    pub fn generator_with_len(
        self,
        seed: u64,
        series_len: usize,
    ) -> Box<dyn SeriesGenerator + Send> {
        match self {
            DatasetKind::RandomWalk => Box::new(random_walk::RandomWalkGen::new(series_len, seed)),
            DatasetKind::Seismic => Box::new(seismic::SeismicGen::new(series_len, seed)),
            DatasetKind::Sald => Box::new(sald::SaldGen::new(series_len, seed)),
        }
    }
}

/// Generates `count` z-normalized series from `generator`, in parallel.
pub fn generate_dataset<G: SeriesGenerator + ?Sized>(generator: &G, count: usize) -> Dataset {
    let series_len = generator.series_len();
    let mut values = vec![0.0f32; count * series_len];
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count.max(1));
    let per_worker = count.div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        for (w, block) in values.chunks_mut(per_worker * series_len).enumerate() {
            scope.spawn(move || {
                let first = (w * per_worker) as u64;
                for (k, series) in block.chunks_exact_mut(series_len).enumerate() {
                    generator.generate_into(first + k as u64, series);
                    znormalize_in_place(series);
                }
            });
        }
    });
    Dataset::from_flat(values, series_len).expect("generated buffer is always well-shaped")
}

/// Convenience: generate `count` series of `kind` with its paper length.
pub fn generate(kind: DatasetKind, count: usize, seed: u64) -> Dataset {
    let g = kind.generator(seed);
    generate_dataset(g.as_ref(), count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::is_znormalized;

    #[test]
    fn generation_is_deterministic_and_parallel_safe() {
        for kind in [
            DatasetKind::RandomWalk,
            DatasetKind::Seismic,
            DatasetKind::Sald,
        ] {
            let a = generate(kind, 100, 7);
            let b = generate(kind, 100, 7);
            assert_eq!(a, b, "{kind:?} must be reproducible");
            let c = generate(kind, 100, 8);
            assert_ne!(a, c, "{kind:?} must depend on the seed");
        }
    }

    #[test]
    fn prefix_stability() {
        // Generating more series must not change earlier ones.
        let small = generate(DatasetKind::RandomWalk, 10, 3);
        let big = generate(DatasetKind::RandomWalk, 50, 3);
        for i in 0..10 {
            assert_eq!(small.series(i), big.series(i), "series {i} changed");
        }
    }

    #[test]
    fn all_series_are_znormalized() {
        for kind in [
            DatasetKind::RandomWalk,
            DatasetKind::Seismic,
            DatasetKind::Sald,
        ] {
            let ds = generate(kind, 50, 11);
            for (i, s) in ds.iter().enumerate() {
                assert!(
                    is_znormalized(s, 5e-2),
                    "{kind:?} series {i} not z-normalized"
                );
            }
        }
    }

    #[test]
    fn paper_series_lengths() {
        assert_eq!(generate(DatasetKind::RandomWalk, 3, 0).series_len(), 256);
        assert_eq!(generate(DatasetKind::Seismic, 3, 0).series_len(), 256);
        assert_eq!(generate(DatasetKind::Sald, 3, 0).series_len(), 128);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetKind::RandomWalk.name(), "Random");
        assert_eq!(DatasetKind::Seismic.name(), "Seismic");
        assert_eq!(DatasetKind::Sald.name(), "SALD");
    }

    #[test]
    fn custom_length_is_respected() {
        let g = DatasetKind::RandomWalk.generator_with_len(5, 64);
        let ds = generate_dataset(g.as_ref(), 4);
        assert_eq!(ds.series_len(), 64);
        assert_eq!(ds.len(), 4);
    }
}
