//! Query workload generation.
//!
//! The paper runs 100 query series per experiment, generated with the same
//! synthetic generator (for the random dataset) or drawn relative to the
//! datasets (for the real ones), and executes them sequentially "to
//! simulate an exploratory analysis scenario". Queries here come from the
//! same generator family as the dataset but from a disjoint seed stream,
//! so a query is almost never an exact member of the collection.

use super::{generate_dataset, DatasetKind};
use crate::types::Dataset;
use crate::znorm::znormalize_in_place;

/// Offset XORed into the dataset seed so query streams never collide with
/// dataset streams.
const QUERY_SEED_TAG: u64 = 0x5EED_5EED_0000_0001;

/// Generates `count` z-normalized query series for a dataset `kind` with
/// the paper's series length.
pub fn generate_queries(kind: DatasetKind, count: usize, seed: u64) -> Dataset {
    generate_queries_with_len(kind, count, seed, kind.paper_series_len())
}

/// Generates `count` z-normalized queries with an explicit series length.
pub fn generate_queries_with_len(
    kind: DatasetKind,
    count: usize,
    seed: u64,
    series_len: usize,
) -> Dataset {
    let g = kind.generator_with_len(seed ^ QUERY_SEED_TAG, series_len);
    generate_dataset(g.as_ref(), count)
}

/// Draws `count` queries by perturbing existing dataset members with
/// Gaussian noise of standard deviation `noise` (relative to the
/// z-normalized scale), then re-normalizing.
///
/// This models the "find series similar to this observed pattern"
/// workload of the paper's Airbus scenario, where the query is a measured
/// series rather than a synthetic one. With `noise == 0.0` every query
/// has an exact match in the dataset.
///
/// # Panics
///
/// Panics if the dataset is empty or `count == 0`.
pub fn noisy_queries_from_dataset(
    dataset: &Dataset,
    count: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    assert!(
        !dataset.is_empty(),
        "cannot draw queries from empty dataset"
    );
    assert!(count > 0, "query count must be positive");
    let mut values = Vec::with_capacity(count * dataset.series_len());
    for q in 0..count {
        let mut rng = super::rng::Rng::for_stream(seed ^ QUERY_SEED_TAG, q as u64);
        let pos = rng.below(dataset.len() as u64) as usize;
        let mut series = dataset.series(pos).to_vec();
        if noise > 0.0 {
            for v in series.iter_mut() {
                *v += rng.gaussian() * noise;
            }
            znormalize_in_place(&mut series);
        }
        values.extend_from_slice(&series);
    }
    Dataset::from_flat(values, dataset.series_len()).expect("well-shaped by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::znorm::is_znormalized;

    #[test]
    fn queries_differ_from_dataset() {
        let ds = generate(DatasetKind::RandomWalk, 50, 3);
        let qs = generate_queries(DatasetKind::RandomWalk, 10, 3);
        assert_eq!(qs.len(), 10);
        assert_eq!(qs.series_len(), ds.series_len());
        for q in qs.iter() {
            for s in ds.iter() {
                assert_ne!(q, s, "query stream must not collide with data stream");
            }
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let a = generate_queries(DatasetKind::Sald, 5, 9);
        let b = generate_queries(DatasetKind::Sald, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_dataset_queries_are_members() {
        let ds = generate(DatasetKind::RandomWalk, 30, 5);
        let qs = noisy_queries_from_dataset(&ds, 8, 0.0, 42);
        for q in qs.iter() {
            assert!(
                ds.iter().any(|s| s == q),
                "noise-free query must be a dataset member"
            );
        }
    }

    #[test]
    fn noisy_queries_are_near_but_not_exact() {
        let ds = generate(DatasetKind::RandomWalk, 30, 5);
        let qs = noisy_queries_from_dataset(&ds, 8, 0.05, 42);
        for q in qs.iter() {
            assert!(is_znormalized(q, 5e-2));
            assert!(!ds.iter().any(|s| s == q));
            // But it should still be very close to its source series.
            let (_, d) = ds.nearest_neighbor_brute_force(q);
            assert!(d < 10.0, "noisy query too far from source: {d}");
        }
    }

    #[test]
    fn custom_length_queries() {
        let qs = generate_queries_with_len(DatasetKind::Seismic, 4, 1, 64);
        assert_eq!(qs.series_len(), 64);
        assert_eq!(qs.len(), 4);
    }
}
