//! Gaussian random-walk generator (the paper's synthetic dataset).
//!
//! "A random number is first drawn from a Gaussian distribution N(0,1),
//! and then at each time point a new number is drawn from this
//! distribution and added to the value of the last number. This kind of
//! data generation has been extensively used in the past (and has been
//! shown to model real-world financial data)." — §IV-A.

use super::rng::Rng;
use super::SeriesGenerator;

/// Random-walk series generator.
#[derive(Debug, Clone)]
pub struct RandomWalkGen {
    series_len: usize,
    seed: u64,
}

impl RandomWalkGen {
    /// Creates a generator for series of `series_len` points.
    ///
    /// # Panics
    ///
    /// Panics if `series_len == 0`.
    pub fn new(series_len: usize, seed: u64) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self { series_len, seed }
    }
}

impl SeriesGenerator for RandomWalkGen {
    fn series_len(&self) -> usize {
        self.series_len
    }

    fn generate_into(&self, index: u64, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.series_len);
        let mut rng = Rng::for_stream(self.seed, index);
        let mut level = rng.gaussian();
        for v in out.iter_mut() {
            level += rng.gaussian();
            *v = level;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_increments_are_gaussian_steps() {
        let g = RandomWalkGen::new(4096, 5);
        let mut out = vec![0.0; 4096];
        g.generate_into(0, &mut out);
        // Increments should have roughly unit variance and zero mean.
        let incs: Vec<f32> = out.windows(2).map(|w| w[1] - w[0]).collect();
        let mean: f32 = incs.iter().sum::<f32>() / incs.len() as f32;
        let var: f32 =
            incs.iter().map(|&d| (d - mean) * (d - mean)).sum::<f32>() / incs.len() as f32;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 1.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn distinct_indices_give_distinct_walks() {
        let g = RandomWalkGen::new(64, 5);
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        g.generate_into(0, &mut a);
        g.generate_into(1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_pure() {
        let g = RandomWalkGen::new(64, 5);
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        g.generate_into(3, &mut a);
        g.generate_into(3, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_length() {
        RandomWalkGen::new(0, 1);
    }
}
