//! Small, fast, deterministic PRNG for workload generation.
//!
//! Dataset generation must be (a) reproducible across runs and thread
//! counts and (b) cheap enough to synthesize millions of series for the
//! benchmark harness. We use xoshiro256++ seeded via SplitMix64 — the
//! standard pairing recommended by the xoshiro authors — plus a Box-Muller
//! transform for N(0,1) variates (the `rand` crate alone does not provide
//! a normal distribution; that lives in `rand_distr`, which is outside the
//! sanctioned dependency set).
//!
//! Every series is generated from its own PRNG seeded by
//! `(dataset_seed, series_index)`, so generation order and parallelism do
//! not affect the data.

/// SplitMix64 step: used for seeding and stream derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ with a Box-Muller Gaussian layer.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box-Muller variate.
    spare: Option<f32>,
}

impl Rng {
    /// Creates a generator from a single seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s, spare: None }
    }

    /// Derives an independent stream for item `index` of a seeded family.
    /// Mixing through SplitMix64 keeps streams decorrelated even for
    /// consecutive indices.
    pub fn for_stream(seed: u64, index: u64) -> Self {
        let mut sm = seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut sm);
        let mut sm2 = index.wrapping_mul(0xE703_7ED1_A0B4_28DB) ^ a;
        let s = [
            splitmix64(&mut sm2),
            splitmix64(&mut sm2),
            splitmix64(&mut sm2),
            splitmix64(&mut sm2),
        ];
        Self { s, spare: None }
    }

    /// Next raw 64-bit value (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small n used in generators (< 2^32).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal variate via Box-Muller (with caching of the pair).
    #[inline]
    pub fn gaussian(&mut self) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = Rng::for_stream(7, 0);
        let mut b = Rng::for_stream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_range_respected() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            let k = r.below(10);
            assert!(k < 10);
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = Rng::new(1234);
        let n = 200_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..n {
            let g = r.gaussian() as f64;
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn gaussian_tail_mass_is_plausible() {
        let mut r = Rng::new(99);
        let n = 100_000;
        let beyond2 = (0..n).filter(|_| r.gaussian().abs() > 2.0).count();
        // P(|Z| > 2) ≈ 4.55%; allow generous slack.
        let frac = beyond2 as f64 / n as f64;
        assert!((0.035..0.056).contains(&frac), "frac={frac}");
    }
}
