//! Synthetic stand-in for the paper's *SALD* dataset.
//!
//! SALD (Southwest University Adult Lifespan Dataset) contains
//! neuroscience MRI series; the paper indexes 200M series of length 128.
//! fMRI BOLD-like signals are smooth and band-limited: slow oscillatory
//! components plus drift and mild noise, with strong similarity across
//! series (many voxels share haemodynamics).
//!
//! The generator mixes a handful of low-frequency sinusoids drawn from a
//! *shared family* of frequencies (creating cross-series similarity), a
//! linear drift, and AR(1) noise. Pruning power lands between the random
//! walk and the seismic stand-in, as in the paper's Figs. 14, 16, 17.

use super::rng::Rng;
use super::SeriesGenerator;

/// SALD-like smooth physiological series generator.
#[derive(Debug, Clone)]
pub struct SaldGen {
    series_len: usize,
    seed: u64,
}

impl SaldGen {
    /// Creates a generator for series of `series_len` points (the paper
    /// uses 128 for SALD).
    ///
    /// # Panics
    ///
    /// Panics if `series_len == 0`.
    pub fn new(series_len: usize, seed: u64) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self { series_len, seed }
    }
}

impl SeriesGenerator for SaldGen {
    fn series_len(&self) -> usize {
        self.series_len
    }

    fn generate_into(&self, index: u64, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.series_len);
        let n = self.series_len as f32;
        let mut rng = Rng::for_stream(self.seed ^ 0x5A1D_0000_0000_0000, index);

        out.fill(0.0);

        // 2–4 slow oscillations; frequencies snap to a shared grid of 12
        // "physiological" bands so that different series often share
        // components (this is what makes SALD series mutually similar).
        let components = 2 + rng.below(3) as usize;
        for _ in 0..components {
            let band = rng.below(12) as f32;
            let cycles = 0.5 + band * 0.45; // 0.5 .. 5.45 cycles per series
            let omega = std::f32::consts::TAU * cycles / n;
            let amplitude = rng.uniform(0.4, 1.6);
            let phase = rng.uniform(0.0, std::f32::consts::TAU);
            for (t, v) in out.iter_mut().enumerate() {
                *v += amplitude * (omega * t as f32 + phase).sin();
            }
        }

        // Linear scanner drift.
        let drift = rng.uniform(-0.8, 0.8);
        for (t, v) in out.iter_mut().enumerate() {
            *v += drift * (t as f32 / n - 0.5);
        }

        // Mild AR(1) noise.
        let mut noise = 0.0f32;
        for v in out.iter_mut() {
            noise = 0.5 * noise + rng.gaussian() * 0.15;
            *v += noise;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_smooth() {
        // Lag-1 autocorrelation of a smooth series should be high
        // (unlike white noise which is ~0).
        let g = SaldGen::new(128, 6);
        let mut buf = vec![0.0f32; 128];
        let mut smooth = 0;
        for i in 0..40 {
            g.generate_into(i, &mut buf);
            let mean: f32 = buf.iter().sum::<f32>() / 128.0;
            let var: f32 = buf.iter().map(|v| (v - mean).powi(2)).sum::<f32>();
            let cov: f32 = buf
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f32>();
            if cov / var > 0.8 {
                smooth += 1;
            }
        }
        assert!(smooth >= 35, "only {smooth}/40 series look smooth");
    }

    #[test]
    fn deterministic() {
        let g = SaldGen::new(128, 4);
        let mut a = vec![0.0; 128];
        let mut b = vec![0.0; 128];
        g.generate_into(5, &mut a);
        g.generate_into(5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_across_indices() {
        let g = SaldGen::new(64, 4);
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        g.generate_into(0, &mut a);
        g.generate_into(1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_length() {
        SaldGen::new(0, 1);
    }
}
