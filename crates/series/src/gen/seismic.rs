//! Synthetic stand-in for the paper's *Seismic* dataset.
//!
//! The paper uses 100M series of seismic waveforms from the IRIS Seismic
//! Data Access repository. Two properties of that collection matter for
//! index behaviour:
//!
//! 1. **Waveform character**: long stretches of low-amplitude
//!    microseismic background interrupted by damped oscillation bursts
//!    (P/S-wave arrivals and codas).
//! 2. **Cluster structure**: recordings of the same event at nearby
//!    stations — and repeated events from the same source region — are
//!    *similar* to each other, so nearest neighbors are close in absolute
//!    terms; still, the collection prunes much worse than random walks
//!    ("working on random data results in better pruning than that on
//!    real data", §IV-C).
//!
//! The generator reproduces both: every series is a noisy, time-jittered,
//! amplitude-scaled rendition of one of a finite family of *event
//! templates* (each template = 1–3 damped sinusoid bursts over colored
//! background). Series sharing a template are mutual near-neighbors;
//! series from different templates are far apart. Pruning lands between
//! the random-walk and worst cases, matching the paper's ordering
//! random > SALD > Seismic.

use super::rng::Rng;
use super::SeriesGenerator;

/// Number of distinct event templates in the collection. More templates
/// ⇒ sparser clusters ⇒ worse pruning.
const NUM_TEMPLATES: u64 = 4096;

/// Seismic-like burst series generator with event-template clustering.
#[derive(Debug, Clone)]
pub struct SeismicGen {
    series_len: usize,
    seed: u64,
}

impl SeismicGen {
    /// Creates a generator for series of `series_len` points.
    ///
    /// # Panics
    ///
    /// Panics if `series_len == 0`.
    pub fn new(series_len: usize, seed: u64) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self { series_len, seed }
    }

    /// Renders the deterministic template waveform for `template_id` into
    /// `out` (background excluded; bursts only).
    fn render_template(&self, template_id: u64, jitter: i64, amp_scale: f32, out: &mut [f32]) {
        let n = self.series_len;
        let mut rng = Rng::for_stream(self.seed ^ 0x7E3A_17E5_0000_0000, template_id);
        let bursts = 1 + rng.below(3) as usize;
        for _ in 0..bursts {
            let onset = rng.below(n as u64 * 8 / 10) as i64 + jitter;
            let amplitude = rng.uniform(1.2, 4.0) * amp_scale;
            // Low enough frequencies that a ±1-sample station jitter
            // keeps same-event recordings strongly correlated.
            let omega = rng.uniform(0.1, 0.7);
            let decay = rng.uniform(0.015, 0.08);
            let phase = rng.uniform(0.0, std::f32::consts::TAU);
            let start = onset.max(0) as usize;
            for (k, v) in out[start.min(n)..].iter_mut().enumerate() {
                let t = (start as i64 - onset) as f32 + k as f32;
                *v += amplitude * (-decay * t).exp() * (omega * t + phase).sin();
            }
        }
    }
}

impl SeriesGenerator for SeismicGen {
    fn series_len(&self) -> usize {
        self.series_len
    }

    fn generate_into(&self, index: u64, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.series_len);
        let mut rng = Rng::for_stream(self.seed ^ 0x5E15_0000_0000_0000, index);

        // AR(1) microseismic background, per-series.
        let phi = 0.72f32;
        let noise_scale = 0.18f32;
        let mut level = 0.0f32;
        for v in out.iter_mut() {
            level = phi * level + rng.gaussian() * noise_scale;
            *v = level;
        }

        // Event: one of NUM_TEMPLATES, recorded with station-dependent
        // time jitter and amplitude scaling.
        let template_id = rng.below(NUM_TEMPLATES);
        let jitter = rng.below(3) as i64 - 1; // ±1 sample
        let amp_scale = rng.uniform(0.85, 1.15);
        self.render_template(template_id, jitter, amp_scale, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::znormalized;

    #[test]
    fn series_have_burst_structure() {
        // The peak absolute amplitude should dominate the median absolute
        // amplitude (bursty, not stationary) for most series.
        let g = SeismicGen::new(256, 9);
        let mut bursty = 0;
        let mut buf = vec![0.0f32; 256];
        for i in 0..50 {
            g.generate_into(i, &mut buf);
            let mut abs: Vec<f32> = buf.iter().map(|v| v.abs()).collect();
            abs.sort_by(f32::total_cmp);
            let median = abs[128];
            let peak = abs[255];
            if peak > 4.0 * median {
                bursty += 1;
            }
        }
        assert!(bursty >= 30, "only {bursty}/50 series look bursty");
    }

    #[test]
    fn template_siblings_are_near_neighbors() {
        // Series sharing an event template must be far closer to each
        // other than to series from other templates (after z-norm).
        let g = SeismicGen::new(256, 9);
        let mut buf = vec![0.0f32; 256];
        // Gather a batch and group by recomputing template ids the same
        // way the generator draws them.
        let count = 2000u64;
        // BTreeMap, not HashMap: the assertions below pick groups by
        // iteration order, and HashMap's per-process hasher randomization
        // made the chosen pairs — and thus the test outcome — flaky.
        let mut by_template: std::collections::BTreeMap<u64, Vec<Vec<f32>>> = Default::default();
        for i in 0..count {
            let mut rng = Rng::for_stream(9 ^ 0x5E15_0000_0000_0000, i);
            // Skip the background draws (2 per point: AR noise uses one
            // gaussian per point; gaussian consumes a variable number of
            // raw draws, so re-derive by regenerating instead).
            g.generate_into(i, &mut buf);
            let _ = &mut rng;
            // Recover the template by brute force: closest template id by
            // checking a few candidates is overkill — instead regenerate
            // the RNG stream exactly as generate_into does.
            let mut rng = Rng::for_stream(9 ^ 0x5E15_0000_0000_0000, i);
            for _ in 0..256 {
                let _ = rng.gaussian();
            }
            let template_id = rng.below(NUM_TEMPLATES);
            by_template
                .entry(template_id)
                .or_default()
                .push(znormalized(&buf));
        }
        // Find a template with at least 2 members.
        let group = by_template
            .values()
            .find(|v| v.len() >= 2)
            .expect("2000 draws over 4096 templates must collide");
        let a = &group[0];
        let b = &group[1];
        let intra = crate::distance::euclidean::ed_sq_scalar(a, b);
        // Compare against members of other templates.
        let mut inter_min = f32::INFINITY;
        for (tid, v) in by_template.iter().take(50) {
            if std::ptr::eq(v.as_ptr(), group.as_ptr()) {
                let _ = tid;
                continue;
            }
            inter_min = inter_min.min(crate::distance::euclidean::ed_sq_scalar(a, &v[0]));
        }
        assert!(
            intra < inter_min,
            "intra-template distance {intra} should undercut inter-template {inter_min}"
        );
    }

    #[test]
    fn deterministic() {
        let g = SeismicGen::new(128, 4);
        let mut a = vec![0.0; 128];
        let mut b = vec![0.0; 128];
        g.generate_into(17, &mut a);
        g.generate_into(17, &mut b);
        assert_eq!(a, b);
        g.generate_into(18, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_length() {
        SeismicGen::new(0, 1);
    }
}
