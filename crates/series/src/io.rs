//! Dataset file persistence, plus the little-endian payload codec shared
//! with the index-snapshot container.
//!
//! A minimal binary container so datasets can move between the CLI,
//! examples, and external tools: a 24-byte header (magic, version,
//! series length, series count — all little-endian) followed by the raw
//! `f32` values, series back to back. The format is deliberately dumb:
//! the paper's pipeline treats raw series files exactly this way (ParIS
//! reads "raw data series from disk … into a raw data buffer in memory").
//!
//! [`PayloadWriter`] / [`PayloadReader`] are the building blocks for
//! richer containers: append/consume fixed-width little-endian scalars
//! and byte runs over one contiguous buffer, with [`fnv1a64`] providing
//! the content checksum. `messi_core::persist` uses them for the
//! versioned, checksummed index snapshot files.

use crate::error::Error;
use crate::types::Dataset;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: `MESSIDS\0`.
const MAGIC: [u8; 8] = *b"MESSIDS\0";
/// Current format version.
const VERSION: u32 = 1;

/// Writes `dataset` to `path` in the container format.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_dataset(dataset: &Dataset, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(dataset.series_len() as u32).to_le_bytes())?;
    w.write_all(&(dataset.len() as u64).to_le_bytes())?;
    // Raw values; f32 -> LE bytes.
    let mut buf = Vec::with_capacity(64 * 1024);
    for &v in dataset.as_flat() {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= 64 * 1024 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads a dataset previously written by [`write_dataset`].
///
/// # Errors
///
/// [`ReadError::Io`] for filesystem problems, [`ReadError::Format`] for
/// structurally malformed files (bad magic, version, or truncated
/// payload), [`ReadError::Data`] for well-formed files whose content
/// cannot form a valid [`Dataset`].
pub fn read_dataset(path: &Path) -> std::result::Result<Dataset, ReadError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    if header[..8] != MAGIC {
        return Err(ReadError::Format("bad magic: not a MESSI dataset file"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ReadError::Format("unsupported format version"));
    }
    let series_len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
    let count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
    if series_len == 0 {
        return Err(ReadError::Data(Error::InvalidSeriesLength(0)));
    }
    let total = count
        .checked_mul(series_len)
        .ok_or(ReadError::Format("size overflow"))?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() != total * 4 {
        return Err(ReadError::Format("payload size disagrees with header"));
    }
    let values: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Dataset::from_flat(values, series_len).map_err(ReadError::Data)
}

/// Streaming FNV-1a 64-bit hasher — the one implementation behind
/// [`fnv1a64`] and [`fnv1a64_f32`], usable incrementally by callers
/// that produce bytes in pieces.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Mixes `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit hash — the content checksum of the snapshot container.
/// Dependency-free, one pass, and byte-order independent (it hashes the
/// serialized little-endian bytes, not in-memory values).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Hashes `f32` values by their little-endian bit patterns — the
/// dataset fingerprint stored in index snapshots (one streaming pass
/// over the whole collection at load time).
pub fn fnv1a64_f32(values: &[f32]) -> u64 {
    let mut h = Fnv1a::new();
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

/// Appends fixed-width little-endian values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its little-endian bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Consumes fixed-width little-endian values from a byte buffer,
/// reporting truncation instead of panicking — the defensive half of
/// [`PayloadWriter`] for reading possibly-corrupt files.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        if self.buf.len() < n {
            return Err("truncated payload");
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Consumes one byte.
    pub fn take_u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, &'static str> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Consumes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Consumes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Consumes an `f32` stored as its little-endian bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, &'static str> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Consumes `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        self.take(n)
    }

    /// Unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

/// Errors from [`read_dataset`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally malformed file.
    Format(&'static str),
    /// Well-formed file with invalid dataset content.
    Data(Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Format(what) => write!(f, "malformed dataset file: {what}"),
            ReadError::Data(e) => write!(f, "invalid dataset content: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, DatasetKind};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("messi-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = gen::generate(DatasetKind::RandomWalk, 37, 5);
        let path = tmp("roundtrip.mds");
        write_dataset(&ds, &path).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic.mds");
        std::fs::write(&path, b"NOTMESSI00000000000000000000").unwrap();
        match read_dataset(&path) {
            Err(ReadError::Format(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let ds = gen::generate(DatasetKind::Sald, 5, 1);
        let path = tmp("trunc.mds");
        write_dataset(&ds, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, bytes).unwrap();
        match read_dataset(&path) {
            Err(ReadError::Format(msg)) => assert!(msg.contains("payload")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_file() {
        match read_dataset(&tmp("does-not-exist.mds")) {
            Err(ReadError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = ReadError::Format("bad thing");
        assert!(e.to_string().contains("bad thing"));
        let e = ReadError::Data(Error::InvalidSeriesLength(0));
        assert!(e.to_string().contains("invalid dataset content"));
    }

    #[test]
    fn payload_roundtrip_preserves_values() {
        let mut w = PayloadWriter::new();
        assert!(w.is_empty());
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f32(-1.5);
        w.put_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u16().unwrap(), 0x1234);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_f32().unwrap(), -1.5);
        assert_eq!(r.take_bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn payload_reader_reports_truncation() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.take_u16().unwrap(), 0x0201);
        assert!(r.take_u32().is_err(), "only one byte left");
        // The failed read consumes nothing.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.take_u8().unwrap(), 3);
    }

    #[test]
    fn fnv_checksums_are_stable_and_sensitive() {
        // Regression-pinned: the checksum is part of the on-disk format.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        // The f32 variant equals hashing the serialized bytes.
        let values = [1.0f32, -2.5, 0.0, f32::MAX];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(fnv1a64_f32(&values), fnv1a64(&bytes));
    }
}
