//! Dataset file persistence.
//!
//! A minimal binary container so datasets can move between the CLI,
//! examples, and external tools: a 24-byte header (magic, version,
//! series length, series count — all little-endian) followed by the raw
//! `f32` values, series back to back. The format is deliberately dumb:
//! the paper's pipeline treats raw series files exactly this way (ParIS
//! reads "raw data series from disk … into a raw data buffer in memory").

use crate::error::Error;
use crate::types::Dataset;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: `MESSIDS\0`.
const MAGIC: [u8; 8] = *b"MESSIDS\0";
/// Current format version.
const VERSION: u32 = 1;

/// Writes `dataset` to `path` in the container format.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_dataset(dataset: &Dataset, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(dataset.series_len() as u32).to_le_bytes())?;
    w.write_all(&(dataset.len() as u64).to_le_bytes())?;
    // Raw values; f32 -> LE bytes.
    let mut buf = Vec::with_capacity(64 * 1024);
    for &v in dataset.as_flat() {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= 64 * 1024 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads a dataset previously written by [`write_dataset`].
///
/// # Errors
///
/// [`ReadError::Io`] for filesystem problems, [`ReadError::Format`] for
/// structurally malformed files (bad magic, version, or truncated
/// payload), [`ReadError::Data`] for well-formed files whose content
/// cannot form a valid [`Dataset`].
pub fn read_dataset(path: &Path) -> std::result::Result<Dataset, ReadError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    if header[..8] != MAGIC {
        return Err(ReadError::Format("bad magic: not a MESSI dataset file"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ReadError::Format("unsupported format version"));
    }
    let series_len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
    let count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
    if series_len == 0 {
        return Err(ReadError::Data(Error::InvalidSeriesLength(0)));
    }
    let total = count
        .checked_mul(series_len)
        .ok_or(ReadError::Format("size overflow"))?;
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() != total * 4 {
        return Err(ReadError::Format("payload size disagrees with header"));
    }
    let values: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Dataset::from_flat(values, series_len).map_err(ReadError::Data)
}

/// Errors from [`read_dataset`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally malformed file.
    Format(&'static str),
    /// Well-formed file with invalid dataset content.
    Data(Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Format(what) => write!(f, "malformed dataset file: {what}"),
            ReadError::Data(e) => write!(f, "invalid dataset content: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, DatasetKind};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("messi-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = gen::generate(DatasetKind::RandomWalk, 37, 5);
        let path = tmp("roundtrip.mds");
        write_dataset(&ds, &path).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic.mds");
        std::fs::write(&path, b"NOTMESSI00000000000000000000").unwrap();
        match read_dataset(&path) {
            Err(ReadError::Format(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let ds = gen::generate(DatasetKind::Sald, 5, 1);
        let path = tmp("trunc.mds");
        write_dataset(&ds, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, bytes).unwrap();
        match read_dataset(&path) {
            Err(ReadError::Format(msg)) => assert!(msg.contains("payload")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_file() {
        match read_dataset(&tmp("does-not-exist.mds")) {
            Err(ReadError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = ReadError::Format("bad thing");
        assert!(e.to_string().contains("bad thing"));
        let e = ReadError::Data(Error::InvalidSeriesLength(0));
        assert!(e.to_string().contains("invalid dataset content"));
    }
}
