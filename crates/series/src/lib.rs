//! Data-series substrate for the MESSI index.
//!
//! This crate provides everything the MESSI paper (Peng, Fatourou, Palpanas;
//! ICDE 2020) assumes *below* the index itself:
//!
//! * [`Dataset`] — the paper's in-memory `RawData` array: a flat,
//!   cache-friendly `f32` buffer holding fixed-length series back to back.
//! * [`znorm`] — z-normalization (§II-A: indices operate on series with
//!   mean 0 and standard deviation 1).
//! * [`paa`] — Piecewise Aggregate Approximation (§II-B), the first stage
//!   of the iSAX summarization pipeline.
//! * [`distance`] — Euclidean and Dynamic Time Warping distance kernels in
//!   scalar (*SISD*) and SIMD variants, with early abandoning, plus the
//!   LB_Keogh envelope machinery used for exact DTW search (§IV, Fig. 19).
//! * [`gen`] — workload generators: the paper's random-walk synthetic data
//!   (§IV-A) and synthetic stand-ins for the Seismic and SALD real
//!   datasets, plus query generation.
//! * [`io`] — a minimal binary container for persisting datasets to disk
//!   (used by the `messi` CLI).
//!
//! Distances are computed and compared **squared** throughout (squared
//! Euclidean distance is monotone in Euclidean distance, so 1-NN answers
//! are identical); take a square root only when a true metric value is
//! needed for presentation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod distance;
pub mod error;
pub mod gen;
pub mod io;
pub mod paa;
pub mod stats;
pub mod types;
pub mod znorm;

pub use error::{Error, Result};
pub use types::{Dataset, DatasetBuilder};

/// Convenient re-exports for downstream crates.
pub mod prelude {
    pub use crate::distance::dtw::{dtw_sq, DtwParams};
    pub use crate::distance::euclidean::{ed_sq, ed_sq_early_abandon};
    pub use crate::distance::lb_keogh::Envelope;
    pub use crate::distance::Kernel;
    pub use crate::gen::{DatasetKind, SeriesGenerator};
    pub use crate::types::{Dataset, DatasetBuilder};
}
