//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA (§II-B of the paper, originally Keogh et al., KAIS 2001) divides a
//! series into `w` segments and represents each segment by its mean. It is
//! the first stage of iSAX summarization and also the representation used
//! on the *query* side of every lower-bound (mindist) computation.
//!
//! When the series length is not a multiple of `w`, segment boundaries are
//! placed at `round(i * n / w)`, so segment lengths differ by at most one
//! point. The mindist kernels in `messi-sax` use the exact per-segment
//! lengths, so lower bounds remain sound in that case.

/// The `(start, end)` point range of PAA segment `i` of a series of
/// length `n` split into `segments` — the single definition of the
/// partition rule, shared by [`segment_bounds`] and the allocation-free
/// consumers (e.g. the mindist-table refill in `messi-sax`).
///
/// Does not validate its arguments; see [`segment_bounds`] for the
/// checked entry point.
#[inline]
pub fn segment_range(n: usize, segments: usize, i: usize) -> (usize, usize) {
    (i * n / segments, (i + 1) * n / segments)
}

/// Returns the `(start, end)` point ranges of the `segments` PAA segments
/// of a series of length `n`.
///
/// Every point belongs to exactly one segment and segments are non-empty
/// as long as `segments <= n`.
///
/// # Panics
///
/// Panics if `segments == 0` or `segments > n`.
pub fn segment_bounds(n: usize, segments: usize) -> Vec<(usize, usize)> {
    assert!(segments > 0, "segments must be positive");
    assert!(
        segments <= n,
        "cannot split {n} points into {segments} segments"
    );
    (0..segments)
        .map(|i| segment_range(n, segments, i))
        .collect()
}

/// Computes the PAA of `series` into the pre-allocated `out` buffer.
///
/// This is the allocation-free version used by the hot index-construction
/// path (Alg. 3 computes one PAA per raw series).
///
/// # Panics
///
/// Panics if `out.len() == 0`, `out.len() > series.len()`.
#[inline]
pub fn paa_into(series: &[f32], out: &mut [f32]) {
    let n = series.len();
    let w = out.len();
    assert!(
        w > 0 && w <= n,
        "invalid PAA segment count {w} for {n} points"
    );
    if n % w == 0 {
        // Fast path: equal segments; the compiler vectorizes this loop.
        let seg = n / w;
        let inv = 1.0 / seg as f32;
        for (o, chunk) in out.iter_mut().zip(series.chunks_exact(seg)) {
            let mut sum = 0.0f32;
            for &v in chunk {
                sum += v;
            }
            *o = sum * inv;
        }
    } else {
        for (i, o) in out.iter_mut().enumerate() {
            let start = i * n / w;
            let end = (i + 1) * n / w;
            let mut sum = 0.0f32;
            for &v in &series[start..end] {
                sum += v;
            }
            *o = sum / (end - start) as f32;
        }
    }
}

/// Computes the PAA of `series` with `segments` segments.
pub fn paa(series: &[f32], segments: usize) -> Vec<f32> {
    let mut out = vec![0.0; segments];
    paa_into(series, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::approx_eq;

    #[test]
    fn bounds_partition_the_series() {
        for n in [16usize, 17, 128, 255, 256] {
            for w in [1usize, 3, 8, 16] {
                if w > n {
                    continue;
                }
                let bounds = segment_bounds(n, w);
                assert_eq!(bounds.len(), w);
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[w - 1].1, n);
                for win in bounds.windows(2) {
                    assert_eq!(win[0].1, win[1].0, "segments must be contiguous");
                }
                assert!(bounds.iter().all(|(s, e)| e > s), "segments non-empty");
            }
        }
    }

    #[test]
    fn paa_of_constant_series_is_constant() {
        let xs = vec![3.5f32; 256];
        let p = paa(&xs, 16);
        assert!(p.iter().all(|&v| v == 3.5));
    }

    #[test]
    fn paa_computes_segment_means() {
        // 8 points, 4 segments of 2: means are (0+1)/2, (2+3)/2, ...
        let xs: Vec<f32> = (0..8).map(|v| v as f32).collect();
        let p = paa(&xs, 4);
        assert_eq!(p, vec![0.5, 2.5, 4.5, 6.5]);
    }

    #[test]
    fn paa_is_linear() {
        let a: Vec<f32> = (0..64).map(|v| (v as f32).cos()).collect();
        let b: Vec<f32> = (0..64).map(|v| (v as f32 * 0.2).sin()).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + y).collect();
        let pa = paa(&a, 8);
        let pb = paa(&b, 8);
        let ps = paa(&sum, 8);
        for i in 0..8 {
            assert!(approx_eq(ps[i], 2.0 * pa[i] + pb[i], 1e-5));
        }
    }

    #[test]
    fn paa_handles_ragged_lengths() {
        // 10 points into 4 segments: bounds are 0..2, 2..5, 5..7, 7..10.
        let xs: Vec<f32> = (0..10).map(|v| v as f32).collect();
        let p = paa(&xs, 4);
        assert!(approx_eq(p[0], 0.5, 1e-6));
        assert!(approx_eq(p[1], 3.0, 1e-6));
        assert!(approx_eq(p[2], 5.5, 1e-6));
        assert!(approx_eq(p[3], 8.0, 1e-6));
    }

    #[test]
    fn paa_whole_series_is_mean() {
        let xs: Vec<f32> = (0..100).map(|v| (v as f32).sqrt()).collect();
        let p = paa(&xs, 1);
        assert!(approx_eq(p[0], crate::stats::mean(&xs), 1e-5));
    }

    #[test]
    #[should_panic(expected = "invalid PAA segment count")]
    fn paa_rejects_more_segments_than_points() {
        let mut out = vec![0.0; 8];
        paa_into(&[1.0, 2.0], &mut out);
    }
}
