//! Small numeric helpers: mean, standard deviation, and float comparison
//! utilities shared by the normalization, PAA, and generator code.

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
#[inline]
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    // Accumulate in f64: a 256-point sum in f32 already loses enough
    // precision to perturb z-normalization at the 1e-6 level.
    let sum: f64 = xs.iter().map(|&v| v as f64).sum();
    (sum / xs.len() as f64) as f32
}

/// Population standard deviation of a slice. Returns 0.0 for an empty slice.
#[inline]
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs) as f64;
    let var: f64 = xs
        .iter()
        .map(|&v| {
            let d = v as f64 - m;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64;
    var.sqrt() as f32
}

/// Mean and population standard deviation in one pass over the data.
#[inline]
pub fn mean_std(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &v in xs {
        let v = v as f64;
        sum += v;
        sum_sq += v * v;
    }
    let m = sum / n;
    // Guard against tiny negative variance from cancellation.
    let var = (sum_sq / n - m * m).max(0.0);
    (m as f32, var.sqrt() as f32)
}

/// Approximate equality for floats with both absolute and relative slack.
#[inline]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_known_values() {
        // Population std dev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(std_dev(&xs), 2.0, 1e-6));
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn mean_std_matches_separate_passes() {
        let xs: Vec<f32> = (0..257)
            .map(|i| (i as f32 * 0.37).sin() * 3.0 + 1.5)
            .collect();
        let (m, s) = mean_std(&xs);
        assert!(approx_eq(m, mean(&xs), 1e-5));
        assert!(approx_eq(s, std_dev(&xs), 1e-5));
    }

    #[test]
    fn approx_eq_handles_scales() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-6));
        assert!(approx_eq(1e6, 1e6 + 0.5, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-6));
    }
}
