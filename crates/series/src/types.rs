//! The in-memory dataset: the paper's `RawData` array.
//!
//! MESSI assumes the raw data series live in one contiguous in-memory
//! array (Fig. 2 of the paper). [`Dataset`] is exactly that: a flat
//! `Vec<f32>` storing `len()` series of `series_len()` points back to
//! back. Series are addressed by their position index, which is what the
//! index tree stores next to each iSAX summary.

use crate::error::{Error, Result};
use std::sync::Arc;

/// A collection of fixed-length data series stored contiguously in memory.
///
/// This mirrors the paper's `RawData` array: series `i` occupies the flat
/// value range `[i * series_len, (i + 1) * series_len)`. All MESSI and
/// baseline algorithms operate on positions into this array.
///
/// The backing buffer is reference-counted, so a dataset can expose a
/// zero-copy **window** over a contiguous sub-range of another dataset's
/// series ([`Dataset::view`]) — sharded index builds partition millions
/// of series without duplicating a single float. Equality compares the
/// *visible* values, so a view equals an owned copy of the same range.
///
/// **Append-safety invariant:** a backing buffer is immutable for the
/// lifetime of its `Arc` — no API grows or mutates `values` in place, so
/// no append can ever reallocate a buffer out from under an outstanding
/// view mid-query. Growth is always *copy-on-grow*: [`Dataset::concat`]
/// builds a brand-new buffer and leaves every existing view pinning the
/// old one alive. Live ingest relies on this: published shard views stay
/// valid forever, and a republished index simply swaps to the new
/// buffer.
#[derive(Debug, Clone)]
pub struct Dataset {
    values: Arc<Vec<f32>>,
    /// First visible value inside `values` (0 for owned datasets).
    offset: usize,
    /// Number of visible values (a whole number of series).
    len_values: usize,
    series_len: usize,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.series_len == other.series_len && self.as_flat() == other.as_flat()
    }
}

impl Dataset {
    /// Creates a dataset from a flat buffer of `count * series_len` values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSeriesLength`] if `series_len == 0` and
    /// [`Error::RaggedBuffer`] if the buffer is not a whole number of series.
    pub fn from_flat(values: Vec<f32>, series_len: usize) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::InvalidSeriesLength(series_len));
        }
        if values.len() % series_len != 0 {
            return Err(Error::RaggedBuffer {
                buffer_len: values.len(),
                series_len,
            });
        }
        let len_values = values.len();
        Ok(Self {
            values: Arc::new(values),
            offset: 0,
            len_values,
            series_len,
        })
    }

    /// A zero-copy window over series `[start, end)` of this dataset:
    /// the returned dataset shares the backing buffer and exposes only
    /// that contiguous sub-range, renumbering its series from 0.
    ///
    /// A view of a view windows the same root buffer (offsets compose),
    /// so chains never accumulate indirection.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn view(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.len(),
            "view [{start}, {end}) out of bounds for {} series",
            self.len()
        );
        Self {
            values: Arc::clone(&self.values),
            offset: self.offset + start * self.series_len,
            len_values: (end - start) * self.series_len,
            series_len: self.series_len,
        }
    }

    /// Creates a dataset from individual series, all of the same length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] when lengths differ, and
    /// [`Error::InvalidSeriesLength`] for an empty first series. An empty
    /// iterator yields an error as a zero series length cannot be inferred.
    pub fn from_series<I, S>(series: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[f32]>,
    {
        let mut iter = series.into_iter();
        let first = match iter.next() {
            Some(s) => s,
            None => return Err(Error::InvalidSeriesLength(0)),
        };
        let series_len = first.as_ref().len();
        if series_len == 0 {
            return Err(Error::InvalidSeriesLength(0));
        }
        let mut values = Vec::new();
        values.extend_from_slice(first.as_ref());
        for s in iter {
            let s = s.as_ref();
            if s.len() != series_len {
                return Err(Error::LengthMismatch {
                    expected: series_len,
                    got: s.len(),
                });
            }
            values.extend_from_slice(s);
        }
        Self::from_flat(values, series_len)
    }

    /// Number of series in the dataset.
    #[inline]
    pub fn len(&self) -> usize {
        self.len_values / self.series_len
    }

    /// Whether the dataset holds no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_values == 0
    }

    /// Length (number of points) of every series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The raw values of series `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn series(&self, pos: usize) -> &[f32] {
        let start = pos * self.series_len;
        &self.as_flat()[start..start + self.series_len]
    }

    /// The visible flat buffer, series back to back (for a view, just
    /// its window).
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.values[self.offset..self.offset + self.len_values]
    }

    /// Iterates over all series in position order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.as_flat().chunks_exact(self.series_len)
    }

    /// Total size of the visible raw data in bytes (the paper reports
    /// dataset sizes in GB of raw `float` data; this is the equivalent
    /// figure). Views report their window, not the shared backing
    /// buffer.
    #[inline]
    pub fn raw_bytes(&self) -> usize {
        self.len_values * std::mem::size_of::<f32>()
    }

    /// Splits the position space into `chunk_size`-sized chunks, exactly as
    /// the index construction phase does. The final chunk may be shorter.
    /// Returns `(start, end)` position pairs.
    pub fn chunks(&self, chunk_size: usize) -> Vec<(usize, usize)> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n = self.len();
        let mut out = Vec::with_capacity(n.div_ceil(chunk_size));
        let mut start = 0;
        while start < n {
            let end = usize::min(start + chunk_size, n);
            out.push((start, end));
            start = end;
        }
        out
    }

    /// Finds the first non-finite value (NaN or ±∞), returning
    /// `(series position, point index)`.
    ///
    /// Non-finite values silently poison similarity search: distances
    /// become NaN, which the pruning comparisons treat as "not less
    /// than", so corrupt series can never be returned *or* excluded
    /// deterministically. Ingestion pipelines should check this once
    /// after loading external data.
    pub fn find_non_finite(&self) -> Option<(usize, usize)> {
        for (pos, s) in self.iter().enumerate() {
            if let Some(idx) = s.iter().position(|v| !v.is_finite()) {
                return Some((pos, idx));
            }
        }
        None
    }

    /// A new dataset holding this dataset's series followed by every
    /// series of `tails`, in order — the *copy-on-grow* primitive live
    /// ingest republishes through.
    ///
    /// The values are copied into a freshly allocated backing buffer;
    /// `self` and `tails` (and any views of them) are left untouched and
    /// remain valid, which is what keeps in-flight queries safe while an
    /// index grows (see the type-level append-safety invariant).
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if any tail has a different
    /// series length.
    pub fn concat<'a, I>(&self, tails: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Dataset>,
    {
        let tails: Vec<&Dataset> = tails.into_iter().collect();
        for t in &tails {
            if t.series_len != self.series_len {
                return Err(Error::LengthMismatch {
                    expected: self.series_len,
                    got: t.series_len,
                });
            }
        }
        let extra: usize = tails.iter().map(|t| t.len_values).sum();
        let mut values = Vec::with_capacity(self.len_values + extra);
        values.extend_from_slice(self.as_flat());
        for t in &tails {
            values.extend_from_slice(t.as_flat());
        }
        Self::from_flat(values, self.series_len)
    }

    /// Brute-force scan: position and squared Euclidean distance of the
    /// nearest neighbor of `query`. The reference answer for every test.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `query` has the wrong length.
    pub fn nearest_neighbor_brute_force(&self, query: &[f32]) -> (usize, f32) {
        assert_eq!(query.len(), self.series_len, "query length mismatch");
        assert!(!self.is_empty(), "empty dataset has no nearest neighbor");
        let mut best = (0usize, f32::INFINITY);
        for (pos, s) in self.iter().enumerate() {
            let d = crate::distance::euclidean::ed_sq_scalar(query, s);
            if d < best.1 {
                best = (pos, d);
            }
        }
        best
    }
}

/// Incremental builder for a [`Dataset`], reserving capacity up front.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    values: Vec<f32>,
    series_len: usize,
}

impl DatasetBuilder {
    /// Starts a builder for series of length `series_len`, pre-allocating
    /// room for `capacity` series.
    ///
    /// # Panics
    ///
    /// Panics if `series_len == 0`.
    pub fn with_capacity(series_len: usize, capacity: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            values: Vec::with_capacity(series_len * capacity),
            series_len,
        }
    }

    /// Appends one series.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the series has the wrong length.
    pub fn push(&mut self, series: &[f32]) -> Result<()> {
        if series.len() != self.series_len {
            return Err(Error::LengthMismatch {
                expected: self.series_len,
                got: series.len(),
            });
        }
        self.values.extend_from_slice(series);
        Ok(())
    }

    /// Number of series appended so far.
    pub fn len(&self) -> usize {
        self.values.len() / self.series_len
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Finishes the builder.
    pub fn build(self) -> Dataset {
        Dataset::from_flat(self.values, self.series_len)
            .expect("builder maintains a whole number of series")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.series_len(), 3);
        assert_eq!(ds.series(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.series(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.raw_bytes(), 24);
    }

    #[test]
    fn from_flat_rejects_bad_shapes() {
        assert!(matches!(
            Dataset::from_flat(vec![1.0; 5], 3),
            Err(Error::RaggedBuffer { .. })
        ));
        assert!(matches!(
            Dataset::from_flat(vec![], 0),
            Err(Error::InvalidSeriesLength(0))
        ));
    }

    #[test]
    fn from_series_checks_lengths() {
        let ds = Dataset::from_series([[1.0f32, 2.0], [3.0, 4.0]]).unwrap();
        assert_eq!(ds.len(), 2);
        let err = Dataset::from_series([vec![1.0f32, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, Error::LengthMismatch { .. }));
        let err = Dataset::from_series(Vec::<Vec<f32>>::new()).unwrap_err();
        assert!(matches!(err, Error::InvalidSeriesLength(0)));
    }

    #[test]
    fn iter_matches_series_accessor() {
        let ds = Dataset::from_flat((0..12).map(|v| v as f32).collect(), 4).unwrap();
        let collected: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(collected.len(), 3);
        for (pos, s) in collected.iter().enumerate() {
            assert_eq!(*s, ds.series(pos));
        }
    }

    #[test]
    fn chunking_covers_everything_once() {
        let ds = Dataset::from_flat(vec![0.0; 10 * 4], 4).unwrap();
        let chunks = ds.chunks(3);
        assert_eq!(chunks, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        let total: usize = chunks.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn builder_accumulates() {
        let mut b = DatasetBuilder::with_capacity(2, 4);
        assert!(b.is_empty());
        b.push(&[1.0, 2.0]).unwrap();
        b.push(&[3.0, 4.0]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.push(&[1.0]).is_err());
        let ds = b.build();
        assert_eq!(ds.series(1), &[3.0, 4.0]);
    }

    #[test]
    fn brute_force_finds_exact_match() {
        let ds = Dataset::from_series([[0.0f32, 0.0], [1.0, 1.0], [5.0, 5.0], [1.0, 1.1]]).unwrap();
        let (pos, d) = ds.nearest_neighbor_brute_force(&[1.0, 1.0]);
        assert_eq!(pos, 1);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn views_window_without_copying() {
        let ds = Dataset::from_flat((0..20).map(|v| v as f32).collect(), 4).unwrap();
        let v = ds.view(1, 4);
        assert_eq!(v.len(), 3);
        assert_eq!(v.series_len(), 4);
        assert_eq!(v.series(0), ds.series(1));
        assert_eq!(v.series(2), ds.series(3));
        assert_eq!(v.as_flat(), &ds.as_flat()[4..16]);
        assert_eq!(v.raw_bytes(), 12 * 4);
        // Same backing allocation — zero copy.
        assert!(std::ptr::eq(v.series(0).as_ptr(), ds.series(1).as_ptr()));
        // A view equals an owned dataset over the same values.
        let owned = Dataset::from_flat(ds.as_flat()[4..16].to_vec(), 4).unwrap();
        assert_eq!(v, owned);
        // Views of views compose offsets against the root buffer.
        let vv = v.view(1, 3);
        assert_eq!(vv.len(), 2);
        assert_eq!(vv.series(0), ds.series(2));
        assert!(std::ptr::eq(vv.series(0).as_ptr(), ds.series(2).as_ptr()));
        // Full-range and empty views are fine.
        assert_eq!(ds.view(0, 5), ds);
        assert!(ds.view(2, 2).is_empty());
    }

    #[test]
    fn concat_copies_into_a_new_buffer() {
        let base = Dataset::from_flat((0..8).map(|v| v as f32).collect(), 4).unwrap();
        let view = base.view(1, 2); // outstanding window over the old buffer
        let tail = Dataset::from_flat(vec![9.0; 4], 4).unwrap();
        let grown = base.concat([&tail]).unwrap();
        assert_eq!(grown.len(), 3);
        assert_eq!(grown.series(0), base.series(0));
        assert_eq!(grown.series(1), base.series(1));
        assert_eq!(grown.series(2), tail.series(0));
        // Copy-on-grow: the new dataset has its own allocation, and the
        // outstanding view still points into the untouched old buffer.
        assert!(!std::ptr::eq(
            grown.series(0).as_ptr(),
            base.series(0).as_ptr()
        ));
        assert!(std::ptr::eq(
            view.series(0).as_ptr(),
            base.series(1).as_ptr()
        ));
        assert_eq!(view.series(0), &[4.0, 5.0, 6.0, 7.0]);
        // Empty tail list is a plain copy; mismatched shapes are refused.
        assert_eq!(base.concat([]).unwrap(), base);
        let odd = Dataset::from_flat(vec![0.0; 2], 2).unwrap();
        assert!(matches!(
            base.concat([&odd]),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_rejects_out_of_bounds() {
        let ds = Dataset::from_flat(vec![0.0; 8], 4).unwrap();
        let _ = ds.view(1, 3);
    }

    #[test]
    fn non_finite_detection() {
        let clean = Dataset::from_series([[0.0f32, 1.0], [2.0, 3.0]]).unwrap();
        assert_eq!(clean.find_non_finite(), None);
        let nan = Dataset::from_series([[0.0f32, 1.0], [2.0, f32::NAN]]).unwrap();
        assert_eq!(nan.find_non_finite(), Some((1, 1)));
        let inf = Dataset::from_series([[f32::INFINITY, 1.0], [2.0, 3.0]]).unwrap();
        assert_eq!(inf.find_non_finite(), Some((0, 0)));
        let neg = Dataset::from_series([[0.0f32, 1.0], [f32::NEG_INFINITY, 3.0]]).unwrap();
        assert_eq!(neg.find_non_finite(), Some((1, 0)));
    }
}
