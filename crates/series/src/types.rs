//! The in-memory dataset: the paper's `RawData` array.
//!
//! MESSI assumes the raw data series live in one contiguous in-memory
//! array (Fig. 2 of the paper). [`Dataset`] is exactly that: a flat
//! `Vec<f32>` storing `len()` series of `series_len()` points back to
//! back. Series are addressed by their position index, which is what the
//! index tree stores next to each iSAX summary.

use crate::error::{Error, Result};

/// A collection of fixed-length data series stored contiguously in memory.
///
/// This mirrors the paper's `RawData` array: series `i` occupies the flat
/// value range `[i * series_len, (i + 1) * series_len)`. All MESSI and
/// baseline algorithms operate on positions into this array.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    values: Vec<f32>,
    series_len: usize,
}

impl Dataset {
    /// Creates a dataset from a flat buffer of `count * series_len` values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSeriesLength`] if `series_len == 0` and
    /// [`Error::RaggedBuffer`] if the buffer is not a whole number of series.
    pub fn from_flat(values: Vec<f32>, series_len: usize) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::InvalidSeriesLength(series_len));
        }
        if values.len() % series_len != 0 {
            return Err(Error::RaggedBuffer {
                buffer_len: values.len(),
                series_len,
            });
        }
        Ok(Self { values, series_len })
    }

    /// Creates a dataset from individual series, all of the same length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] when lengths differ, and
    /// [`Error::InvalidSeriesLength`] for an empty first series. An empty
    /// iterator yields an error as a zero series length cannot be inferred.
    pub fn from_series<I, S>(series: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[f32]>,
    {
        let mut iter = series.into_iter();
        let first = match iter.next() {
            Some(s) => s,
            None => return Err(Error::InvalidSeriesLength(0)),
        };
        let series_len = first.as_ref().len();
        if series_len == 0 {
            return Err(Error::InvalidSeriesLength(0));
        }
        let mut values = Vec::new();
        values.extend_from_slice(first.as_ref());
        for s in iter {
            let s = s.as_ref();
            if s.len() != series_len {
                return Err(Error::LengthMismatch {
                    expected: series_len,
                    got: s.len(),
                });
            }
            values.extend_from_slice(s);
        }
        Ok(Self { values, series_len })
    }

    /// Number of series in the dataset.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.series_len
    }

    /// Whether the dataset holds no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Length (number of points) of every series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// The raw values of series `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn series(&self, pos: usize) -> &[f32] {
        let start = pos * self.series_len;
        &self.values[start..start + self.series_len]
    }

    /// The whole flat buffer, series back to back.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.values
    }

    /// Iterates over all series in position order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.values.chunks_exact(self.series_len)
    }

    /// Total size of the raw data in bytes (the paper reports dataset
    /// sizes in GB of raw `float` data; this is the equivalent figure).
    #[inline]
    pub fn raw_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }

    /// Splits the position space into `chunk_size`-sized chunks, exactly as
    /// the index construction phase does. The final chunk may be shorter.
    /// Returns `(start, end)` position pairs.
    pub fn chunks(&self, chunk_size: usize) -> Vec<(usize, usize)> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n = self.len();
        let mut out = Vec::with_capacity(n.div_ceil(chunk_size));
        let mut start = 0;
        while start < n {
            let end = usize::min(start + chunk_size, n);
            out.push((start, end));
            start = end;
        }
        out
    }

    /// Finds the first non-finite value (NaN or ±∞), returning
    /// `(series position, point index)`.
    ///
    /// Non-finite values silently poison similarity search: distances
    /// become NaN, which the pruning comparisons treat as "not less
    /// than", so corrupt series can never be returned *or* excluded
    /// deterministically. Ingestion pipelines should check this once
    /// after loading external data.
    pub fn find_non_finite(&self) -> Option<(usize, usize)> {
        for (pos, s) in self.iter().enumerate() {
            if let Some(idx) = s.iter().position(|v| !v.is_finite()) {
                return Some((pos, idx));
            }
        }
        None
    }

    /// Brute-force scan: position and squared Euclidean distance of the
    /// nearest neighbor of `query`. The reference answer for every test.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `query` has the wrong length.
    pub fn nearest_neighbor_brute_force(&self, query: &[f32]) -> (usize, f32) {
        assert_eq!(query.len(), self.series_len, "query length mismatch");
        assert!(!self.is_empty(), "empty dataset has no nearest neighbor");
        let mut best = (0usize, f32::INFINITY);
        for (pos, s) in self.iter().enumerate() {
            let d = crate::distance::euclidean::ed_sq_scalar(query, s);
            if d < best.1 {
                best = (pos, d);
            }
        }
        best
    }
}

/// Incremental builder for a [`Dataset`], reserving capacity up front.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    values: Vec<f32>,
    series_len: usize,
}

impl DatasetBuilder {
    /// Starts a builder for series of length `series_len`, pre-allocating
    /// room for `capacity` series.
    ///
    /// # Panics
    ///
    /// Panics if `series_len == 0`.
    pub fn with_capacity(series_len: usize, capacity: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        Self {
            values: Vec::with_capacity(series_len * capacity),
            series_len,
        }
    }

    /// Appends one series.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] if the series has the wrong length.
    pub fn push(&mut self, series: &[f32]) -> Result<()> {
        if series.len() != self.series_len {
            return Err(Error::LengthMismatch {
                expected: self.series_len,
                got: series.len(),
            });
        }
        self.values.extend_from_slice(series);
        Ok(())
    }

    /// Number of series appended so far.
    pub fn len(&self) -> usize {
        self.values.len() / self.series_len
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Finishes the builder.
    pub fn build(self) -> Dataset {
        Dataset {
            values: self.values,
            series_len: self.series_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.series_len(), 3);
        assert_eq!(ds.series(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.series(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.raw_bytes(), 24);
    }

    #[test]
    fn from_flat_rejects_bad_shapes() {
        assert!(matches!(
            Dataset::from_flat(vec![1.0; 5], 3),
            Err(Error::RaggedBuffer { .. })
        ));
        assert!(matches!(
            Dataset::from_flat(vec![], 0),
            Err(Error::InvalidSeriesLength(0))
        ));
    }

    #[test]
    fn from_series_checks_lengths() {
        let ds = Dataset::from_series([[1.0f32, 2.0], [3.0, 4.0]]).unwrap();
        assert_eq!(ds.len(), 2);
        let err = Dataset::from_series([vec![1.0f32, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, Error::LengthMismatch { .. }));
        let err = Dataset::from_series(Vec::<Vec<f32>>::new()).unwrap_err();
        assert!(matches!(err, Error::InvalidSeriesLength(0)));
    }

    #[test]
    fn iter_matches_series_accessor() {
        let ds = Dataset::from_flat((0..12).map(|v| v as f32).collect(), 4).unwrap();
        let collected: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(collected.len(), 3);
        for (pos, s) in collected.iter().enumerate() {
            assert_eq!(*s, ds.series(pos));
        }
    }

    #[test]
    fn chunking_covers_everything_once() {
        let ds = Dataset::from_flat(vec![0.0; 10 * 4], 4).unwrap();
        let chunks = ds.chunks(3);
        assert_eq!(chunks, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        let total: usize = chunks.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn builder_accumulates() {
        let mut b = DatasetBuilder::with_capacity(2, 4);
        assert!(b.is_empty());
        b.push(&[1.0, 2.0]).unwrap();
        b.push(&[3.0, 4.0]).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.push(&[1.0]).is_err());
        let ds = b.build();
        assert_eq!(ds.series(1), &[3.0, 4.0]);
    }

    #[test]
    fn brute_force_finds_exact_match() {
        let ds = Dataset::from_series([[0.0f32, 0.0], [1.0, 1.0], [5.0, 5.0], [1.0, 1.1]]).unwrap();
        let (pos, d) = ds.nearest_neighbor_brute_force(&[1.0, 1.0]);
        assert_eq!(pos, 1);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn non_finite_detection() {
        let clean = Dataset::from_series([[0.0f32, 1.0], [2.0, 3.0]]).unwrap();
        assert_eq!(clean.find_non_finite(), None);
        let nan = Dataset::from_series([[0.0f32, 1.0], [2.0, f32::NAN]]).unwrap();
        assert_eq!(nan.find_non_finite(), Some((1, 1)));
        let inf = Dataset::from_series([[f32::INFINITY, 1.0], [2.0, 3.0]]).unwrap();
        assert_eq!(inf.find_non_finite(), Some((0, 0)));
        let neg = Dataset::from_series([[0.0f32, 1.0], [f32::NEG_INFINITY, 3.0]]).unwrap();
        assert_eq!(neg.find_non_finite(), Some((1, 0)));
    }
}
