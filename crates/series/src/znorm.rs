//! Z-normalization.
//!
//! The paper (§II-A) indexes z-normalized series: mean 0, standard
//! deviation 1. Minimizing Euclidean distance on z-normalized series is
//! equivalent to maximizing Pearson correlation, and the N(0,1) iSAX
//! breakpoints (messi-sax) assume this normalization.

use crate::stats::mean_std;

/// Standard deviation below which a series is treated as constant and
/// normalized to all zeros instead of being divided by noise.
pub const EPSILON_STD: f32 = 1e-8;

/// Z-normalizes `series` in place: `(x - mean) / std`.
///
/// Constant series (std < [`EPSILON_STD`]) become all zeros, matching the
/// convention of the UCR Suite and the authors' implementation.
pub fn znormalize_in_place(series: &mut [f32]) {
    let (m, s) = mean_std(series);
    if s < EPSILON_STD {
        series.fill(0.0);
        return;
    }
    let inv = 1.0 / s;
    for v in series.iter_mut() {
        *v = (*v - m) * inv;
    }
}

/// Returns a z-normalized copy of `series`.
pub fn znormalized(series: &[f32]) -> Vec<f32> {
    let mut out = series.to_vec();
    znormalize_in_place(&mut out);
    out
}

/// Whether a series is already (approximately) z-normalized.
pub fn is_znormalized(series: &[f32], tol: f32) -> bool {
    if series.is_empty() {
        return true;
    }
    let (m, s) = mean_std(series);
    m.abs() <= tol && (s - 1.0).abs() <= tol || s < EPSILON_STD && m.abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{approx_eq, mean_std};

    #[test]
    fn normalizes_to_zero_mean_unit_std() {
        let mut xs: Vec<f32> = (0..256).map(|i| (i as f32).sin() * 7.0 + 42.0).collect();
        znormalize_in_place(&mut xs);
        let (m, s) = mean_std(&xs);
        assert!(m.abs() < 1e-5, "mean {m}");
        assert!(approx_eq(s, 1.0, 1e-4), "std {s}");
        assert!(is_znormalized(&xs, 1e-3));
    }

    #[test]
    fn constant_series_becomes_zero() {
        let mut xs = vec![5.0f32; 64];
        znormalize_in_place(&mut xs);
        assert!(xs.iter().all(|&v| v == 0.0));
        assert!(is_znormalized(&xs, 1e-3));
    }

    #[test]
    fn znormalized_copy_leaves_input_untouched() {
        let xs = vec![1.0f32, 2.0, 3.0, 4.0];
        let out = znormalized(&xs);
        assert_eq!(xs, vec![1.0, 2.0, 3.0, 4.0]);
        let (m, _) = mean_std(&out);
        assert!(m.abs() < 1e-6);
    }

    #[test]
    fn empty_series_is_trivially_normalized() {
        assert!(is_znormalized(&[], 1e-6));
        let mut xs: Vec<f32> = vec![];
        znormalize_in_place(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    fn detects_unnormalized_series() {
        let xs = vec![10.0f32, 20.0, 30.0];
        assert!(!is_znormalized(&xs, 1e-3));
    }
}
