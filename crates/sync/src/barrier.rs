//! Reusable sense-reversing barrier.
//!
//! MESSI's workers synchronize twice per operation: index workers between
//! iSAX summarization and tree construction (Alg. 2 line 2), and search
//! workers between the tree pass and queue processing (Alg. 6 line 7).
//! A sense-reversing barrier supports such repeated phases without
//! reinitialization: each episode flips the "sense" flag waiting threads
//! observe.
//!
//! Waiters spin briefly (the phases around the barrier are load-balanced
//! by Fetch&Inc, so arrival skew is usually tiny), then block on a
//! condition variable. Blocking — rather than spin/park polling — matters
//! when the worker count exceeds the physical cores (the paper's Ns = 48
//! on 24 cores): spinning waiters would otherwise steal timeslices from
//! the workers still running toward the barrier.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Iterations of busy-waiting before blocking.
const SPIN_LIMIT: u32 = 256;

/// A reusable barrier for a fixed party of threads.
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SenseBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of threads that must arrive for the barrier to open.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Re-arms the barrier for a (possibly different) party count.
    ///
    /// Requires exclusive access, which proves no thread is waiting; the
    /// arrival count is cleared and the sense flag is left as-is (a
    /// sense-reversing barrier works from either initial sense). This is
    /// the reuse hook for query scratch that outlives one query: the
    /// barrier episode machinery is recycled instead of reconstructed.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn reset(&mut self, parties: usize) {
        assert!(parties > 0, "barrier needs at least one party");
        self.parties = parties;
        *self.arrived.get_mut() = 0;
    }

    /// Blocks until all `parties` threads have called `wait`. Returns
    /// `true` for exactly one thread per episode (the last arriver), like
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.parties {
            // Last arriver: reset the count, flip the sense, wake sleepers.
            self.arrived.store(0, Ordering::Relaxed);
            {
                // The lock orders the sense flip against waiters that are
                // between their final check and the condvar sleep.
                let _g = self.lock.lock();
                self.sense.store(my_sense, Ordering::Release);
            }
            self.cv.notify_all();
            return true;
        }
        // Brief optimistic spin.
        for _ in 0..SPIN_LIMIT {
            if self.sense.load(Ordering::Acquire) == my_sense {
                return false;
            }
            std::hint::spin_loop();
        }
        // Block.
        let mut guard = self.lock.lock();
        while self.sense.load(Ordering::Acquire) != my_sense {
            self.cv.wait(&mut guard);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait(), "sole thread is always the leader");
        }
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn barrier_separates_phases() {
        // Each thread increments a phase counter, waits, then checks that
        // every increment from the phase is visible; repeated many times.
        const THREADS: usize = 8;
        const PHASES: usize = 50;
        let barrier = SenseBarrier::new(THREADS);
        let counters: Vec<AtomicUsize> = (0..PHASES).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for (phase, c) in counters.iter().enumerate() {
                        c.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        assert_eq!(
                            c.load(Ordering::SeqCst),
                            THREADS,
                            "phase {phase}: some thread raced past the barrier"
                        );
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const THREADS: usize = 6;
        const EPISODES: usize = 40;
        let barrier = SenseBarrier::new(THREADS);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..EPISODES {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), EPISODES);
    }

    #[test]
    fn oversubscribed_barrier_makes_progress() {
        // More parties than cores: the blocking path must not deadlock.
        let parties = 4 * std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let barrier = SenseBarrier::new(parties);
        std::thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for _ in 0..5 {
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        SenseBarrier::new(0);
    }

    #[test]
    fn reset_changes_party_count_between_episodes() {
        let mut barrier = SenseBarrier::new(3);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| barrier.wait());
            }
        });
        barrier.reset(5);
        assert_eq!(barrier.parties(), 5);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..5 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn reset_rejects_zero_parties() {
        SenseBarrier::new(1).reset(0);
    }
}
