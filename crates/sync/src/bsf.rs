//! The shared Best-So-Far (BSF) bound.
//!
//! During exact search all workers share one scalar: the smallest (squared)
//! distance found so far, used both for pruning and as the final answer
//! (Alg. 5). The paper protects it with a lock, observing that "the BSF is
//! updated only 10-12 times (on average) per query. So, the
//! synchronization cost for updating the BSF is negligible" (§III-B).
//!
//! Both variants are provided: [`LockedBsf`] reproduces the paper;
//! [`AtomicBsf`] is the natural Rust alternative — for non-negative
//! IEEE-754 floats the total order of values coincides with the integer
//! order of their bit patterns, so `fetch_min` on the bits implements an
//! exact concurrent minimum. The `bsf_policy` ablation bench compares
//! them.
//!
//! Both track the *position* of the series achieving the minimum, which
//! the paper's pseudocode leaves implicit but any real system must return.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Position value meaning "no answer yet".
pub const NO_POSITION: u32 = u32::MAX;

/// Shared best-so-far: current minimum distance and its arg-min position.
pub trait BestSoFar: Sync {
    /// Current bound (squared distance).
    fn load(&self) -> f32;

    /// Installs `(dist, pos)` if `dist` improves on the current minimum.
    /// Returns `true` if the value was installed.
    fn update_min(&self, dist: f32, pos: u32) -> bool;

    /// Current `(distance, position)` snapshot, consistent with each other.
    fn load_with_pos(&self) -> (f32, u32);
}

/// Lock-free BSF: distance bits and position packed in one `u64`
/// (`dist_bits << 32 | pos`), updated by CAS-min.
///
/// Packing distance in the *high* half makes the u64 comparison order
/// agree with the distance order (ties broken by smaller position), so a
/// plain `fetch_min` would almost work — CAS is used to preserve the
/// "returns whether we improved" contract exactly.
#[derive(Debug)]
pub struct AtomicBsf {
    packed: AtomicU64,
}

#[inline]
fn pack(dist: f32, pos: u32) -> u64 {
    debug_assert!(
        dist >= 0.0 || dist.is_infinite(),
        "distances are non-negative"
    );
    ((dist.to_bits() as u64) << 32) | pos as u64
}

#[inline]
fn unpack(packed: u64) -> (f32, u32) {
    (f32::from_bits((packed >> 32) as u32), packed as u32)
}

impl AtomicBsf {
    /// Creates a BSF initialized to `+inf` with no position.
    pub fn new() -> Self {
        Self::with_initial(f32::INFINITY, NO_POSITION)
    }

    /// Creates a BSF seeded with an initial bound (the approximate-search
    /// answer in MESSI).
    pub fn with_initial(dist: f32, pos: u32) -> Self {
        Self {
            packed: AtomicU64::new(pack(dist, pos)),
        }
    }
}

impl Default for AtomicBsf {
    fn default() -> Self {
        Self::new()
    }
}

impl BestSoFar for AtomicBsf {
    #[inline]
    fn load(&self) -> f32 {
        unpack(self.packed.load(Ordering::Acquire)).0
    }

    #[inline]
    fn update_min(&self, dist: f32, pos: u32) -> bool {
        let new = pack(dist, pos);
        let mut cur = self.packed.load(Ordering::Relaxed);
        loop {
            if new >= cur {
                // Not an improvement (distance bigger, or equal distance
                // with larger-or-equal position).
                return false;
            }
            match self
                .packed
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    fn load_with_pos(&self) -> (f32, u32) {
        unpack(self.packed.load(Ordering::Acquire))
    }
}

/// The paper's lock-protected BSF (Alg. 8: acquire BSFLock, write,
/// release).
///
/// Faithful to the original's memory behaviour: the lock guards
/// *updates* only (Alg. 8 lines 5–7); the pruning checks throughout
/// Alg. 6–9 read the shared BSF variable without taking the lock (in the
/// authors' C this is a plain racy float read). Reads here go through an
/// atomic snapshot — same cost profile as the C read, without the UB. A
/// read-locking variant would serialize all Ns workers on every pruning
/// check and is exactly the overhead the paper's design avoids.
#[derive(Debug)]
pub struct LockedBsf {
    /// Snapshot readable without the lock (packed like [`AtomicBsf`]).
    snapshot: AtomicU64,
    /// Serializes updates (the paper's BSFLock).
    write_lock: Mutex<()>,
}

impl LockedBsf {
    /// Creates a BSF initialized to `+inf` with no position.
    pub fn new() -> Self {
        Self::with_initial(f32::INFINITY, NO_POSITION)
    }

    /// Creates a BSF seeded with an initial bound.
    pub fn with_initial(dist: f32, pos: u32) -> Self {
        Self {
            snapshot: AtomicU64::new(pack(dist, pos)),
            write_lock: Mutex::new(()),
        }
    }
}

impl Default for LockedBsf {
    fn default() -> Self {
        Self::new()
    }
}

impl BestSoFar for LockedBsf {
    #[inline]
    fn load(&self) -> f32 {
        unpack(self.snapshot.load(Ordering::Acquire)).0
    }

    #[inline]
    fn update_min(&self, dist: f32, pos: u32) -> bool {
        // Cheap racy pre-check, as in the paper (Alg. 8 line 2 tests
        // before taking BSFLock; the test repeats under the lock).
        if dist >= self.load() {
            return false;
        }
        let _guard = self.write_lock.lock();
        let (cur, _) = unpack(self.snapshot.load(Ordering::Acquire));
        if dist < cur {
            self.snapshot.store(pack(dist, pos), Ordering::Release);
            true
        } else {
            false
        }
    }

    #[inline]
    fn load_with_pos(&self) -> (f32, u32) {
        unpack(self.snapshot.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(bsf: &dyn BestSoFar) {
        assert_eq!(bsf.load(), f32::INFINITY);
        assert!(bsf.update_min(10.0, 3));
        assert_eq!(bsf.load_with_pos(), (10.0, 3));
        assert!(!bsf.update_min(10.5, 4), "worse value must be rejected");
        assert!(bsf.update_min(2.5, 7));
        assert!(!bsf.update_min(2.5, 9), "equal value must be rejected");
        assert_eq!(bsf.load_with_pos(), (2.5, 7));
        assert!(bsf.update_min(0.0, 1));
        assert_eq!(bsf.load(), 0.0);
    }

    #[test]
    fn atomic_bsf_semantics() {
        exercise(&AtomicBsf::new());
    }

    #[test]
    fn locked_bsf_semantics() {
        exercise(&LockedBsf::new());
    }

    #[test]
    fn initial_seed_respected() {
        let b = AtomicBsf::with_initial(5.0, 42);
        assert_eq!(b.load_with_pos(), (5.0, 42));
        assert!(!b.update_min(6.0, 0));
        let b = LockedBsf::with_initial(5.0, 42);
        assert_eq!(b.load_with_pos(), (5.0, 42));
    }

    #[test]
    fn concurrent_minimum_is_exact() {
        // N threads race to install distances; the final state must be the
        // global minimum with its matching position.
        for (name, bsf) in [
            ("atomic", Box::new(AtomicBsf::new()) as Box<dyn BestSoFar>),
            ("locked", Box::new(LockedBsf::new()) as Box<dyn BestSoFar>),
        ] {
            let n_threads = 8;
            let per_thread = 10_000u32;
            std::thread::scope(|s| {
                for t in 0..n_threads {
                    let bsf = &bsf;
                    s.spawn(move || {
                        // Deterministic pseudo-random distances; thread t
                        // owns positions t*per_thread..(t+1)*per_thread.
                        let mut x = 0x9E3779B9u32.wrapping_mul(t + 1);
                        for i in 0..per_thread {
                            x ^= x << 13;
                            x ^= x >> 17;
                            x ^= x << 5;
                            let dist = (x % 1_000_000) as f32 / 10.0 + 1.0;
                            bsf.update_min(dist, t * per_thread + i);
                        }
                    });
                }
            });
            // Recompute the expected minimum sequentially.
            let mut expect = (f32::INFINITY, NO_POSITION);
            for t in 0..n_threads {
                let mut x = 0x9E3779B9u32.wrapping_mul(t + 1);
                for i in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    let dist = (x % 1_000_000) as f32 / 10.0 + 1.0;
                    if dist < expect.0 {
                        expect = (dist, t * per_thread + i);
                    }
                }
            }
            assert_eq!(bsf.load_with_pos().0, expect.0, "{name}: wrong minimum");
        }
    }

    #[test]
    fn pack_order_matches_distance_order() {
        let cases = [0.0f32, 0.5, 1.0, 2.5, 1e10, f32::INFINITY];
        for w in cases.windows(2) {
            assert!(pack(w[0], 0) < pack(w[1], 0));
            // Position breaks ties.
            assert!(pack(w[0], 1) < pack(w[0], 2));
        }
    }
}
