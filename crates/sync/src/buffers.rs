//! Partitioned iSAX buffers.
//!
//! During index construction, each computed summary must reach the buffer
//! of its root subtree. ParIS guarded each buffer with a lock; MESSI
//! instead splits every buffer into one *part per worker*: "each iSAX
//! buffer is split into parts and each worker works on its own part …
//! \[which\] completely eliminates the synchronization cost in accessing
//! the iSAX buffers" (§I, §III and footnote 3).
//!
//! `PartitionedBuffers` realizes this with the type system instead of
//! discipline: phase 1 hands each worker an exclusive `&mut BufferPart`
//! (all parts for every key, owned by that worker), so data races are
//! impossible by construction; phase 2 reads the assembled buffers
//! immutably.
//!
//! "Each part of an iSAX buffer is allocated dynamically when the first
//! element to be stored in it is produced. The size of each part has an
//! initial small value (5 series in this work …) and it is adjusted
//! dynamically … by doubling its size each time" (§III-A) — reproduced by
//! the explicit growth policy in [`BufferPart::push`]; the initial
//! capacity is the Fig. 8 experiment's knob.

/// All buffer parts belonging to one worker: one `Vec<T>` per key
/// (= per root subtree).
#[derive(Debug)]
pub struct BufferPart<T> {
    initial_capacity: usize,
    parts: Vec<Vec<T>>,
}

impl<T> BufferPart<T> {
    fn new(num_keys: usize, initial_capacity: usize) -> Self {
        let mut parts = Vec::with_capacity(num_keys);
        parts.resize_with(num_keys, Vec::new);
        Self {
            initial_capacity,
            parts,
        }
    }

    /// Appends `value` to this worker's part of buffer `key`, applying the
    /// paper's growth policy (allocate `initial_capacity` on first insert,
    /// then double).
    #[inline]
    pub fn push(&mut self, key: usize, value: T) {
        let v = &mut self.parts[key];
        if v.len() == v.capacity() {
            let additional = if v.capacity() == 0 {
                self.initial_capacity.max(1)
            } else {
                v.capacity() // double
            };
            v.reserve_exact(additional);
        }
        v.push(value);
    }

    /// This worker's part of buffer `key`.
    #[inline]
    pub fn part(&self, key: usize) -> &[T] {
        &self.parts[key]
    }

    /// Number of keys (root subtrees).
    pub fn num_keys(&self) -> usize {
        self.parts.len()
    }

    /// Entries this worker stored across all keys.
    pub fn total_len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

/// The complete set of iSAX buffers: `num_keys × num_workers` parts.
#[derive(Debug)]
pub struct PartitionedBuffers<T> {
    workers: Vec<BufferPart<T>>,
    num_keys: usize,
    /// Cache for [`PartitionedBuffers::touched_keys`], computed on first
    /// use after the fill phase and invalidated by
    /// [`PartitionedBuffers::parts_mut`].
    touched: std::sync::OnceLock<Vec<usize>>,
}

impl<T> PartitionedBuffers<T> {
    /// Creates buffers for `num_keys` root subtrees and `num_workers`
    /// workers, with the given initial part capacity (the paper uses 5).
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(num_keys: usize, num_workers: usize, initial_capacity: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            workers: (0..num_workers)
                .map(|_| BufferPart::new(num_keys, initial_capacity))
                .collect(),
            num_keys,
            touched: std::sync::OnceLock::new(),
        }
    }

    /// Number of keys (root subtrees).
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Mutable access to every worker's parts, for handing one to each
    /// spawned worker thread (`parts_mut().iter_mut()` yields disjoint
    /// `&mut BufferPart`s, so phase 1 needs no locks). Invalidates the
    /// [`PartitionedBuffers::touched_keys`] cache: the borrow lets the
    /// caller change which buffers are non-empty.
    pub fn parts_mut(&mut self) -> &mut [BufferPart<T>] {
        self.touched.take();
        &mut self.workers
    }

    /// Iterates over all entries of buffer `key` across every worker's
    /// part — what Alg. 4 line 5–6 does ("traverses all parts of the
    /// assigned buffer").
    pub fn iter_key(&self, key: usize) -> impl Iterator<Item = &T> {
        self.workers.iter().flat_map(move |w| w.part(key).iter())
    }

    /// Total entries stored under `key`.
    pub fn key_len(&self, key: usize) -> usize {
        self.workers.iter().map(|w| w.part(key).len()).sum()
    }

    /// Total entries across all keys and workers.
    pub fn total_len(&self) -> usize {
        self.workers.iter().map(BufferPart::total_len).sum()
    }

    /// Keys that received at least one entry, ascending. Tree construction
    /// iterates over these instead of all 2^w possible keys.
    ///
    /// The scan over all `num_keys × num_workers` parts runs once, after
    /// the fill phase; later calls return the cached slice without
    /// allocating. Any call to [`PartitionedBuffers::parts_mut`] drops the
    /// cache (the buffers may change underneath it).
    pub fn touched_keys(&self) -> &[usize] {
        self.touched.get_or_init(|| {
            (0..self.num_keys)
                .filter(|&k| self.workers.iter().any(|w| !w.part(k).is_empty()))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_policy_starts_small_and_doubles() {
        let mut part: BufferPart<u32> = BufferPart::new(4, 5);
        assert_eq!(part.part(0).len(), 0);
        part.push(0, 1);
        assert_eq!(
            part.parts[0].capacity(),
            5,
            "first insert allocates initial"
        );
        for i in 0..4 {
            part.push(0, i);
        }
        assert_eq!(part.parts[0].capacity(), 5);
        part.push(0, 9);
        assert_eq!(part.parts[0].capacity(), 10, "overflow doubles");
        for i in 0..4 {
            part.push(0, i);
        }
        part.push(0, 99);
        assert_eq!(part.parts[0].capacity(), 20);
    }

    #[test]
    fn zero_initial_capacity_still_works() {
        let mut part: BufferPart<u32> = BufferPart::new(1, 0);
        for i in 0..100 {
            part.push(0, i);
        }
        assert_eq!(part.part(0).len(), 100);
    }

    #[test]
    fn keys_are_independent() {
        let mut part: BufferPart<&str> = BufferPart::new(3, 2);
        part.push(0, "a");
        part.push(2, "c");
        part.push(0, "b");
        assert_eq!(part.part(0), &["a", "b"]);
        assert_eq!(part.part(1), &[] as &[&str]);
        assert_eq!(part.part(2), &["c"]);
        assert_eq!(part.total_len(), 3);
        assert_eq!(part.num_keys(), 3);
    }

    #[test]
    fn parallel_fill_then_drain_sees_everything() {
        // Phase 1: 6 workers each push their ids into key = id % num_keys.
        // Phase 2: iter_key must see every id exactly once.
        let num_keys = 16;
        let num_workers = 6;
        let per_worker = 10_000usize;
        let mut buffers: PartitionedBuffers<usize> =
            PartitionedBuffers::new(num_keys, num_workers, 5);
        std::thread::scope(|s| {
            for (w, part) in buffers.parts_mut().iter_mut().enumerate() {
                s.spawn(move || {
                    for i in 0..per_worker {
                        let id = w * per_worker + i;
                        part.push(id % num_keys, id);
                    }
                });
            }
        });
        assert_eq!(buffers.total_len(), num_workers * per_worker);
        let mut seen = vec![false; num_workers * per_worker];
        for key in 0..num_keys {
            for &id in buffers.iter_key(key) {
                assert_eq!(id % num_keys, key, "entry filed under wrong key");
                assert!(!seen[id], "id {id} seen twice");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some ids lost");
        assert_eq!(buffers.touched_keys().len(), num_keys);
    }

    #[test]
    fn touched_keys_skips_empty_buffers() {
        let mut buffers: PartitionedBuffers<u8> = PartitionedBuffers::new(8, 2, 5);
        buffers.parts_mut()[0].push(3, 1);
        buffers.parts_mut()[1].push(5, 2);
        buffers.parts_mut()[1].push(3, 3);
        assert_eq!(buffers.touched_keys(), vec![3, 5]);
        assert_eq!(buffers.key_len(3), 2);
        assert_eq!(buffers.key_len(0), 0);
        assert_eq!(buffers.num_keys(), 8);
        assert_eq!(buffers.num_workers(), 2);
    }

    #[test]
    fn touched_keys_is_cached_until_parts_change() {
        let mut buffers: PartitionedBuffers<u8> = PartitionedBuffers::new(8, 2, 5);
        buffers.parts_mut()[0].push(3, 1);
        let first = buffers.touched_keys().as_ptr();
        // Repeated calls return the same cached slice — no recomputation,
        // no allocation.
        assert_eq!(buffers.touched_keys().as_ptr(), first);
        assert_eq!(buffers.touched_keys(), vec![3]);
        // Re-borrowing the parts invalidates the cache.
        buffers.parts_mut()[1].push(5, 2);
        assert_eq!(buffers.touched_keys(), vec![3, 5]);
    }
}
