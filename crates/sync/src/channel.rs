//! A bounded blocking MPMC channel with explicit close semantics.
//!
//! The serve frontend needs a hand-off point between the acceptor thread
//! and the bounded pool of connection handlers: the acceptor pushes
//! accepted connections, handlers pop them, and shutdown must wake every
//! blocked party exactly once. None of the existing primitives fit — the
//! [`crate::Dispenser`] hands out *indices* of a fixed-size batch and the
//! [`crate::SlotPool`] never blocks — so this is the third hand-off
//! shape: a classic bounded buffer (Mutex + two condvars), generic so the
//! future live-ingest path can reuse it for delta-log records.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking multi-producer/multi-consumer channel.
///
/// [`BoundedChannel::push`] blocks while the channel is full;
/// [`BoundedChannel::pop`] blocks while it is empty. [`BoundedChannel::close`]
/// wakes every blocked thread: pushes start failing immediately, pops keep
/// draining what is already buffered and then return `None`.
///
/// ```
/// use messi_sync::BoundedChannel;
/// use std::sync::Arc;
///
/// let ch = Arc::new(BoundedChannel::new(2));
/// ch.push(1).unwrap();
/// ch.push(2).unwrap();
/// ch.close();
/// assert_eq!(ch.push(3), Err(3)); // closed
/// assert_eq!(ch.pop(), Some(1));  // drains the buffer…
/// assert_eq!(ch.pop(), Some(2));
/// assert_eq!(ch.pop(), None); // …then reports closed
/// ```
pub struct BoundedChannel<T> {
    capacity: usize,
    state: Mutex<ChannelState<T>>,
    /// Signalled when an item arrives or the channel closes (pop side).
    items: Condvar,
    /// Signalled when space frees up or the channel closes (push side).
    space: Condvar,
}

impl<T> BoundedChannel<T> {
    /// Creates a channel buffering at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            items: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently buffered items.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there is space, then enqueues `value`. Returns the
    /// value back if the channel is (or gets) closed while waiting.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(value);
            }
            if st.queue.len() < self.capacity {
                st.queue.push_back(value);
                drop(st);
                self.items.notify_one();
                return Ok(());
            }
            self.space.wait(&mut st);
        }
    }

    /// Enqueues without blocking. Returns the value back if the channel
    /// is full or closed.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut st = self.state.lock();
        if st.closed || st.queue.len() >= self.capacity {
            return Err(value);
        }
        st.queue.push_back(value);
        drop(st);
        self.items.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// once the channel is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                drop(st);
                self.space.notify_one();
                return Some(value);
            }
            if st.closed {
                return None;
            }
            self.items.wait(&mut st);
        }
    }

    /// Closes the channel and wakes every blocked producer and consumer.
    /// Buffered items remain poppable; further pushes fail.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.items.notify_all();
        self.space.notify_all();
    }

    /// Whether [`BoundedChannel::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

impl<T> std::fmt::Debug for BoundedChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("BoundedChannel")
            .field("capacity", &self.capacity)
            .field("len", &st.queue.len())
            .field("closed", &st.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let ch = BoundedChannel::new(3);
        for i in 0..3 {
            ch.push(i).unwrap();
        }
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.try_push(99), Err(99), "full channel rejects try_push");
        for i in 0..3 {
            assert_eq!(ch.pop(), Some(i));
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn close_wakes_consumers_and_rejects_producers() {
        let ch = Arc::new(BoundedChannel::<u32>::new(2));
        let waiter = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.pop())
        };
        // Give the consumer a moment to block on the empty channel.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ch.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert_eq!(ch.push(1), Err(1));
        assert!(ch.is_closed());
    }

    #[test]
    fn close_drains_buffered_items_first() {
        let ch = BoundedChannel::new(4);
        ch.push('a').unwrap();
        ch.push('b').unwrap();
        ch.close();
        assert_eq!(ch.pop(), Some('a'));
        assert_eq!(ch.pop(), Some('b'));
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn blocked_producer_wakes_on_space_or_close() {
        let ch = Arc::new(BoundedChannel::new(1));
        ch.push(0).unwrap();
        let producer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.push(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ch.pop(), Some(0), "frees the slot the producer waits on");
        assert_eq!(producer.join().unwrap(), Ok(()));

        let blocked = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.push(2))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        ch.close();
        assert_eq!(blocked.join().unwrap(), Err(2), "closed while waiting");
    }

    #[test]
    fn mpmc_transfers_every_item_exactly_once() {
        let ch = Arc::new(BoundedChannel::new(4));
        let received = Arc::new(AtomicUsize::new(0));
        const PER_PRODUCER: usize = 200;
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let ch = Arc::clone(&ch);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        ch.push(p * PER_PRODUCER + i).unwrap();
                    }
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let ch = Arc::clone(&ch);
                    let received = Arc::clone(&received);
                    s.spawn(move || {
                        while ch.pop().is_some() {
                            received.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            // Producers are done once their handles would join; close after
            // the push count is reached by polling the received total.
            while received.load(Ordering::SeqCst) + ch.len() < PRODUCERS * PER_PRODUCER {
                std::thread::yield_now();
            }
            ch.close();
            for c in consumers {
                c.join().unwrap();
            }
        });
        assert_eq!(received.load(Ordering::SeqCst), PRODUCERS * PER_PRODUCER);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = BoundedChannel::<u8>::new(0);
    }
}
