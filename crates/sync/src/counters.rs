//! Relaxed statistics counters.
//!
//! Fig. 17 of the paper counts lower-bound and real distance calculations
//! per algorithm. These counts must not perturb the measured times, so
//! they use relaxed atomics (a single uncontended `lock xadd` on x86) and
//! can be compiled out of hot loops by passing `None`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_events() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
