//! Fetch&Inc work dispensers.
//!
//! All load balancing in MESSI is done by atomically fetching and
//! incrementing a shared counter: chunks of the raw-data array during
//! summarization (Alg. 3 line 3), iSAX buffers during tree construction
//! (Alg. 4 line 3), and root subtrees during query traversal (Alg. 6
//! line 4). "Chunks are assigned to index workers the one after the other
//! (using Fetch&Inc)" — §III.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded Fetch&Inc dispenser handing out `0 .. limit` exactly once.
#[derive(Debug)]
pub struct Dispenser {
    next: AtomicUsize,
    limit: usize,
}

impl Dispenser {
    /// Creates a dispenser for item ids `0 .. limit`.
    pub fn new(limit: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            limit,
        }
    }

    /// Takes the next item id, or `None` when the range is exhausted.
    ///
    /// Each id in `0 .. limit` is returned to exactly one caller.
    #[inline]
    pub fn next(&self) -> Option<usize> {
        // fetch_add may overshoot past `limit` under contention; ids
        // beyond the limit are simply discarded. usize overflow would
        // need 2^64 - limit failed calls, which cannot occur in practice.
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        (id < self.limit).then_some(id)
    }

    /// Number of ids this dispenser hands out in total.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Resets the dispenser for reuse (only valid between parallel phases,
    /// while no worker is calling [`Dispenser::next`]).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// Iterator adapter: drains a dispenser from one thread.
impl<'a> IntoIterator for &'a Dispenser {
    type Item = usize;
    type IntoIter = DispenserIter<'a>;

    fn into_iter(self) -> DispenserIter<'a> {
        DispenserIter { dispenser: self }
    }
}

/// Iterator over the remaining ids of a [`Dispenser`].
#[derive(Debug)]
pub struct DispenserIter<'a> {
    dispenser: &'a Dispenser,
}

impl Iterator for DispenserIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.dispenser.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn hands_out_each_id_once_single_threaded() {
        let d = Dispenser::new(5);
        let got: Vec<usize> = (&d).into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.next(), None);
        assert_eq!(d.limit(), 5);
    }

    #[test]
    fn reset_allows_reuse() {
        let d = Dispenser::new(3);
        while d.next().is_some() {}
        d.reset();
        assert_eq!(d.next(), Some(0));
    }

    #[test]
    fn zero_limit_dispenses_nothing() {
        let d = Dispenser::new(0);
        assert_eq!(d.next(), None);
    }

    #[test]
    fn concurrent_draining_partitions_the_range() {
        let n = 100_000;
        let d = Dispenser::new(n);
        let seen = Mutex::new(HashSet::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(id) = d.next() {
                        local.push(id);
                    }
                    let mut set = seen.lock().unwrap();
                    for id in local {
                        assert!(set.insert(id), "id {id} dispensed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), n, "every id dispensed");
    }
}
