//! Parallel-coordination substrate for the MESSI index.
//!
//! MESSI's performance hinges on "careful design choices and coordination
//! of the parallel workers when accessing the required data structures"
//! (§I). This crate packages those coordination primitives, each mapping
//! to a specific mechanism in the paper:
//!
//! * [`dispenser::Dispenser`] — the Fetch&Inc counters that assign raw
//!   data chunks (Alg. 3), iSAX buffers (Alg. 4), and root subtrees
//!   (Alg. 6) to workers.
//! * [`barrier::SenseBarrier`] — the barrier between the summarization
//!   and tree-construction phases (Alg. 2 line 2) and between the tree
//!   pass and queue processing of search workers (Alg. 6 line 7).
//! * [`bsf`] — the shared Best-So-Far: the paper's lock-protected
//!   variant ([`bsf::LockedBsf`], Alg. 8 lines 5–7) and a lock-free
//!   atomic-min variant ([`bsf::AtomicBsf`]) exploiting the order
//!   isomorphism between non-negative IEEE-754 floats and their bit
//!   patterns.
//! * [`pqueue`] — the concurrent minimum priority queues search workers
//!   insert leaves into and drain (Alg. 5–8), with the `finished` flag
//!   protocol and the multi-queue round-robin insertion discipline.
//! * [`buffers::PartitionedBuffers`] — the iSAX buffers, "split into
//!   parts, each worker works on its own part … completely eliminating
//!   the synchronization cost in accessing the iSAX buffers" (§I, §III),
//!   with the small-initial-capacity doubling growth policy of Fig. 8.
//! * [`counters::Counter`] — relaxed statistics counters used for the
//!   distance-calculation counts of Fig. 17.
//! * [`slots::SlotPool`] — a lock-free checkout/checkin pool, the handoff
//!   between incoming queries and the warm per-worker `QueryContext`
//!   scratch of the pooled query-execution layer.
//! * [`channel::BoundedChannel`] — a bounded blocking MPMC channel with
//!   close semantics, the hand-off between the serve frontend's acceptor
//!   and its connection-handler pool.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod barrier;
pub mod bsf;
pub mod buffers;
pub mod channel;
pub mod counters;
pub mod dispenser;
pub mod pool;
pub mod pqueue;
pub mod slots;

pub use barrier::SenseBarrier;
pub use bsf::{AtomicBsf, BestSoFar, LockedBsf};
pub use buffers::{BufferPart, PartitionedBuffers};
pub use channel::BoundedChannel;
pub use counters::Counter;
pub use dispenser::Dispenser;
pub use pool::WorkerPool;
pub use pqueue::{ConcurrentMinQueue, QueueSet};
pub use slots::SlotPool;
