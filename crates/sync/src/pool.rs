//! Persistent search-worker pool.
//!
//! The paper's pseudocode creates the Ns search workers afresh for every
//! query (Alg. 5 line 7). At the paper's scale (queries of tens of
//! milliseconds over 100M series) thread creation is noise; at the
//! scales this repository benches, spawning 48 threads costs several
//! milliseconds — more than entire queries — and would invert every
//! per-core scaling figure. The pool keeps the workers alive across
//! queries and hands them one *scoped* job at a time, preserving the
//! algorithms' structure (each job still receives a worker id `pid` in
//! `0..parties`, exactly like a freshly spawned worker would).
//!
//! Safety model: [`WorkerPool::run`] erases the job closure's lifetime,
//! but does not return until every participating worker has finished
//! executing it, and workers never touch a job after reporting
//! completion — so the borrow can never dangle. Panics inside workers
//! are caught, counted, and re-raised on the caller.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

std::thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Lifetime-erased job pointer (`&dyn Fn(usize) + Sync`).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is Sync, and `run` guarantees it outlives all use.
unsafe impl Send for Job {}

struct State {
    generation: u64,
    parties: usize,
    job: Option<Job>,
    remaining: usize,
    panicked: usize,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    shutdown: AtomicBool,
    size: AtomicUsize,
}

/// A pool of persistent worker threads executing scoped jobs.
///
/// ```
/// use messi_sync::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let data = [1u64, 2, 3, 4];          // borrowed from this stack frame
/// let sum = AtomicU64::new(0);
/// pool.run(4, &|pid| {
///     sum.fetch_add(data[pid], Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 10);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Serializes concurrent `run` calls (the pool executes one job at a
    /// time; concurrent callers queue up here).
    dispatch: Mutex<()>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (grown on demand by `run`).
    pub fn new(threads: usize) -> Self {
        let pool = Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    generation: 0,
                    parties: 0,
                    job: None,
                    remaining: 0,
                    panicked: 0,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                size: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            dispatch: Mutex::new(()),
        };
        pool.ensure_capacity(threads);
        pool
    }

    /// The process-wide pool used by the query algorithms, sized lazily.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(2 * cores)
        })
    }

    /// Current number of worker threads.
    pub fn size(&self) -> usize {
        self.shared.size.load(Ordering::Acquire)
    }

    /// Grows the pool to at least `n` workers.
    pub fn ensure_capacity(&self, n: usize) {
        let mut handles = self.handles.lock();
        while handles.len() < n {
            let id = handles.len();
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("messi-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("failed to spawn pool worker"),
            );
        }
        self.shared.size.fetch_max(handles.len(), Ordering::AcqRel);
    }

    /// Runs `f(pid)` on `parties` workers (pids `0..parties`) and waits
    /// for all of them. Grows the pool if needed.
    ///
    /// Reentrant calls from inside a pool worker fall back to plain
    /// scoped threads (correct, just slower) to avoid self-deadlock.
    ///
    /// # Panics
    ///
    /// Re-raises a panic if any worker's job panicked.
    pub fn run<'env>(&self, parties: usize, f: &(dyn Fn(usize) + Sync + 'env)) {
        let parties = parties.max(1);
        if IS_POOL_WORKER.with(|w| w.get()) {
            // Nested use: run on fresh scoped threads instead.
            std::thread::scope(|s| {
                for pid in 0..parties {
                    let f = &f;
                    s.spawn(move || f(pid));
                }
            });
            return;
        }
        self.ensure_capacity(parties);

        // SAFETY: `run` blocks until `remaining == 0`, which workers only
        // reach after the job call returns; the reference therefore
        // outlives every dereference.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'env),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const (dyn Fn(usize) + Sync + 'env))
        });

        let _dispatch = self.dispatch.lock();
        {
            let mut st = self.shared.state.lock();
            st.generation += 1;
            st.parties = parties;
            st.job = Some(job);
            st.remaining = parties;
            st.panicked = 0;
        }
        self.shared.work_cv.notify_all();
        let panicked = {
            let mut st = self.shared.state.lock();
            while st.remaining > 0 {
                self.shared.done_cv.wait(&mut st);
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if panicked > 0 {
            panic!("{panicked} pool worker(s) panicked during job");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Take the state lock so no worker is between generation check and
        // wait when we notify.
        drop(self.shared.state.lock());
        self.shared.work_cv.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size())
            .finish()
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut last_gen = 0u64;
    loop {
        let (job, parties) = {
            let mut st = shared.state.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if st.generation != last_gen {
                    break;
                }
                shared.work_cv.wait(&mut st);
            }
            last_gen = st.generation;
            (st.job, st.parties)
        };
        if id >= parties {
            continue; // not drafted for this job
        }
        let job = job.expect("active generation always carries a job");
        // SAFETY: see `run` — the pointee outlives this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(id) }));
        let mut st = shared.state.lock();
        if result.is_err() {
            st.panicked += 1;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_pid_exactly_once() {
        let pool = WorkerPool::new(8);
        let hits: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        pool.run(8, &|pid| {
            hits[pid].fetch_add(1, Ordering::SeqCst);
        });
        for (pid, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "pid {pid}");
        }
    }

    #[test]
    fn reuses_workers_across_many_jobs() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn grows_on_demand() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.size(), 2);
        let count = AtomicU64::new(0);
        pool.run(9, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 9);
        assert!(pool.size() >= 9);
    }

    #[test]
    fn borrows_caller_stack_data() {
        let pool = WorkerPool::new(4);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        pool.run(4, &|pid| {
            sum.fetch_add(data[pid], Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_callers_are_serialized_but_correct() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..20 {
                        let local = AtomicU64::new(0);
                        pool.run(3, &|_| {
                            local.fetch_add(1, Ordering::SeqCst);
                        });
                        assert_eq!(local.load(Ordering::SeqCst), 3);
                        total.fetch_add(3, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 6 * 20 * 3);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|pid| {
                if pid == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "caller must observe the worker panic");
        // Pool still usable afterwards.
        let ok = AtomicU64::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_run_falls_back_to_scoped_threads() {
        let pool = WorkerPool::global();
        let total = AtomicU64::new(0);
        pool.run(2, &|_| {
            // Reentrant call from a pool worker.
            WorkerPool::global().run(3, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }
}
