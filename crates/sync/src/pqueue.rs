//! Concurrent minimum priority queues.
//!
//! MESSI's query answering places unpruned leaves into Nq shared minimum
//! priority queues keyed by lower-bound distance, then drains them in
//! order (Alg. 5–8). "Each queue may be accessed by more than one
//! threads, so a lock per queue is used to protect its concurrent access"
//! (§III-B). The queue is "implemented using an array whose size changes
//! dynamically" — a binary heap, as here.
//!
//! The `finished` flag implements the give-up protocol of Alg. 8: once a
//! worker pops an element whose bound exceeds the BSF, every remaining
//! element is worse (min-queue), so the queue is marked finished and all
//! workers skip it. A queue drained empty is equally finished, because
//! insertion completed before the processing phase began (Alg. 6's
//! barrier).

use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Heap entry ordered by *smallest* key first (BinaryHeap is a max-heap,
/// so the ordering is reversed; NaN keys are banned by an assertion).
#[derive(Debug)]
struct HeapEntry<T> {
    key: f32,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap then yields the minimum key first.
        other.key.total_cmp(&self.key)
    }
}

/// A lock-protected minimum priority queue with a `finished` flag.
#[derive(Debug)]
pub struct ConcurrentMinQueue<T> {
    heap: Mutex<BinaryHeap<HeapEntry<T>>>,
    finished: AtomicBool,
}

impl<T> Default for ConcurrentMinQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ConcurrentMinQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
            finished: AtomicBool::new(false),
        }
    }

    /// Inserts `item` with priority `key` (lower = served first).
    ///
    /// # Panics
    ///
    /// Panics if `key` is NaN (which would poison the heap order).
    pub fn push(&self, key: f32, item: T) {
        assert!(!key.is_nan(), "NaN priority");
        self.heap.lock().push(HeapEntry { key, item });
    }

    /// Removes and returns the minimum-key entry, or `None` if empty.
    pub fn pop_min(&self) -> Option<(f32, T)> {
        self.heap.lock().pop().map(|e| (e.key, e.item))
    }

    /// Returns the minimum key without removing it.
    pub fn peek_min_key(&self) -> Option<f32> {
        self.heap.lock().peek().map(|e| e.key)
    }

    /// Number of queued entries (racy under concurrency; for diagnostics).
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// Whether the queue is empty (racy under concurrency).
    pub fn is_empty(&self) -> bool {
        self.heap.lock().is_empty()
    }

    /// Marks this queue as finished: no remaining entry can matter.
    pub fn mark_finished(&self) {
        self.finished.store(true, Ordering::Release);
    }

    /// Whether the queue has been marked finished.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Clears entries and the finished flag (reuse between queries).
    pub fn reset(&self) {
        self.heap.lock().clear();
        self.finished.store(false, Ordering::Release);
    }
}

/// A set of Nq concurrent minimum queues with the paper's round-robin
/// insertion discipline ("Each thread inserts elements in the priority
/// queues in a round-robin fashion so that load balancing is achieved").
#[derive(Debug)]
pub struct QueueSet<T> {
    queues: Vec<ConcurrentMinQueue<T>>,
}

impl<T> QueueSet<T> {
    /// Creates `nq` empty queues.
    ///
    /// # Panics
    ///
    /// Panics if `nq == 0`.
    pub fn new(nq: usize) -> Self {
        assert!(nq > 0, "need at least one queue");
        Self {
            queues: (0..nq).map(|_| ConcurrentMinQueue::new()).collect(),
        }
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Always false: a set holds at least one queue.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th queue.
    pub fn queue(&self, i: usize) -> &ConcurrentMinQueue<T> {
        &self.queues[i]
    }

    /// Inserts into the queue at `*cursor`, then advances the cursor
    /// (Alg. 7 lines 5–9: each worker carries its own cursor `q`).
    pub fn push_round_robin(&self, cursor: &mut usize, key: f32, item: T) {
        let i = *cursor % self.queues.len();
        self.queues[i].push(key, item);
        *cursor = (i + 1) % self.queues.len();
    }

    /// First unfinished queue index at or after `start` (circular scan),
    /// or `None` when every queue is finished (Alg. 6 lines 11–13).
    pub fn next_unfinished(&self, start: usize) -> Option<usize> {
        let n = self.queues.len();
        (0..n)
            .map(|k| (start + k) % n)
            .find(|&i| !self.queues[i].is_finished())
    }

    /// Whether every queue is finished.
    pub fn all_finished(&self) -> bool {
        self.queues.iter().all(ConcurrentMinQueue::is_finished)
    }

    /// Total queued entries across the set (racy; diagnostics only).
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(ConcurrentMinQueue::len).sum()
    }

    /// Resets all queues for reuse.
    pub fn reset(&self) {
        for q in &self.queues {
            q.reset();
        }
    }

    /// Resets the set to exactly `nq` empty, unfinished queues, keeping
    /// as many existing queues (and their heap capacities) as possible.
    ///
    /// Returns `true` when the call had to allocate (the set grew);
    /// shrinking and same-size resets are allocation-free, which is what
    /// lets a reusable query context run whole batches without touching
    /// the allocator after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `nq == 0`.
    pub fn reset_to(&mut self, nq: usize) -> bool {
        assert!(nq > 0, "need at least one queue");
        let grew = nq > self.queues.len();
        self.queues.truncate(nq);
        for q in &self.queues {
            q.reset();
        }
        while self.queues.len() < nq {
            self.queues.push(ConcurrentMinQueue::new());
        }
        grew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_key_order() {
        let q = ConcurrentMinQueue::new();
        for (k, v) in [(3.0f32, 'c'), (1.0, 'a'), (2.0, 'b'), (0.5, 'z')] {
            q.push(k, v);
        }
        assert_eq!(q.peek_min_key(), Some(0.5));
        let mut got = Vec::new();
        while let Some((k, v)) = q.pop_min() {
            got.push((k, v));
        }
        assert_eq!(got, vec![(0.5, 'z'), (1.0, 'a'), (2.0, 'b'), (3.0, 'c')]);
        assert!(q.is_empty());
    }

    #[test]
    fn finished_flag_lifecycle() {
        let q: ConcurrentMinQueue<u32> = ConcurrentMinQueue::new();
        assert!(!q.is_finished());
        q.push(1.0, 7);
        q.mark_finished();
        assert!(q.is_finished());
        q.reset();
        assert!(!q.is_finished());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_keys() {
        let q: ConcurrentMinQueue<u32> = ConcurrentMinQueue::new();
        q.push(f32::NAN, 0);
    }

    #[test]
    fn concurrent_push_pop_preserves_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = ConcurrentMinQueue::new();
        let producers = 4usize;
        let consumers = 3usize;
        let per = 5_000usize;
        let total = producers * per;
        let taken = AtomicUsize::new(0);
        let consumed = Mutex::new(Vec::with_capacity(total));
        std::thread::scope(|s| {
            for p in 0..producers {
                let q = &q;
                s.spawn(move || {
                    for i in 0..per {
                        q.push((i % 97) as f32, p * per + i);
                    }
                });
            }
            for _ in 0..consumers {
                let q = &q;
                let consumed = &consumed;
                let taken = &taken;
                s.spawn(move || {
                    let mut local = Vec::new();
                    // Keep consuming until the global count says all items
                    // have been taken (the queue may be transiently empty
                    // while producers are still pushing).
                    while taken.load(Ordering::Relaxed) < total {
                        if let Some((_, v)) = q.pop_min() {
                            taken.fetch_add(1, Ordering::Relaxed);
                            local.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    consumed.lock().extend(local);
                });
            }
        });
        let mut all = consumed.into_inner();
        assert!(q.is_empty(), "all items should have been consumed");
        all.sort_unstable();
        assert_eq!(all.len(), total);
        all.dedup();
        assert_eq!(all.len(), total, "duplicates detected");
    }

    #[test]
    fn round_robin_balances_queues() {
        let set: QueueSet<usize> = QueueSet::new(4);
        let mut cursor = 1; // as if pid % Nq == 1
        for i in 0..40 {
            set.push_round_robin(&mut cursor, i as f32, i);
        }
        for i in 0..4 {
            assert_eq!(set.queue(i).len(), 10, "queue {i} imbalanced");
        }
        assert_eq!(set.total_len(), 40);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn next_unfinished_scans_circularly() {
        let set: QueueSet<u32> = QueueSet::new(3);
        assert_eq!(set.next_unfinished(2), Some(2));
        set.queue(2).mark_finished();
        assert_eq!(set.next_unfinished(2), Some(0));
        set.queue(0).mark_finished();
        assert_eq!(set.next_unfinished(2), Some(1));
        set.queue(1).mark_finished();
        assert_eq!(set.next_unfinished(2), None);
        assert!(set.all_finished());
        set.reset();
        assert!(!set.all_finished());
    }

    #[test]
    fn reset_to_resizes_and_clears() {
        let mut set: QueueSet<u32> = QueueSet::new(2);
        let mut cursor = 0;
        for i in 0..6 {
            set.push_round_robin(&mut cursor, i as f32, i);
        }
        set.queue(0).mark_finished();
        // Growing allocates and leaves every queue empty and unfinished.
        assert!(set.reset_to(5));
        assert_eq!(set.len(), 5);
        assert_eq!(set.total_len(), 0);
        assert!(!set.all_finished());
        assert_eq!(set.next_unfinished(0), Some(0));
        // Shrinking and same-size resets are allocation-free.
        assert!(!set.reset_to(3));
        assert_eq!(set.len(), 3);
        assert!(!set.reset_to(3));
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn reset_to_rejects_zero() {
        let mut set: QueueSet<u32> = QueueSet::new(1);
        set.reset_to(0);
    }

    #[test]
    fn equal_keys_are_all_served() {
        let q = ConcurrentMinQueue::new();
        for i in 0..5 {
            q.push(1.0, i);
        }
        let mut got: Vec<i32> = std::iter::from_fn(|| q.pop_min().map(|(_, v)| v)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
