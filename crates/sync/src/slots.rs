//! A lock-free pool of reusable values ("slots").
//!
//! The query-execution layer keeps one warm `QueryContext` per search
//! worker so a steady stream of queries runs allocation-free (the
//! ParIS+/VLDBJ framing of query answering as a worker-pool *service*
//! with per-worker scratch). The handoff between a request and a warm
//! context must not reintroduce a lock on the hot path — that would
//! serialize exactly the workers the scratch exists to decouple.
//!
//! [`SlotPool`] is that handoff: a fixed array of slots, each a tiny
//! three-state machine (`VACANT` → `BUSY` → `OCCUPIED`) driven purely by
//! compare-and-swap. [`SlotPool::checkout`] claims any occupied slot and
//! takes its value; [`SlotPool::checkin`] parks a value in any vacant
//! slot. Neither ever blocks: a failed CAS just moves to the next slot,
//! and an empty (or full) pool returns the situation to the caller
//! instead of waiting — the caller builds a fresh value (cold start) or
//! drops the surplus one.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// No value stored; a `checkin` may claim this slot.
const VACANT: u8 = 0;
/// A thread is moving a value in or out; nobody else may touch the slot.
const BUSY: u8 = 1;
/// A value is stored; a `checkout` may claim this slot.
const OCCUPIED: u8 = 2;

struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
}

/// A fixed-capacity, lock-free pool of reusable values.
///
/// ```
/// use messi_sync::SlotPool;
///
/// let pool: SlotPool<Vec<u8>> = SlotPool::new(2);
/// assert!(pool.checkout().is_none(), "pool starts empty");
///
/// // Park a warm value; the next checkout gets it back.
/// assert!(pool.checkin(vec![1, 2, 3]).is_none());
/// assert_eq!(pool.checkout(), Some(vec![1, 2, 3]));
///
/// // Past capacity, checkin hands the value back instead of blocking.
/// assert!(pool.checkin(vec![1]).is_none());
/// assert!(pool.checkin(vec![2]).is_none());
/// assert_eq!(pool.checkin(vec![3]), Some(vec![3]));
/// ```
pub struct SlotPool<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: values cross threads only through checkout/checkin, which hand
// out exclusive ownership — so `T: Send` is all that is required. The
// `UnsafeCell` is only ever accessed by the thread that CAS-ed the slot
// into `BUSY` (see the state protocol on `checkout`/`checkin`).
unsafe impl<T: Send> Send for SlotPool<T> {}
unsafe impl<T: Send> Sync for SlotPool<T> {}

impl<T> SlotPool<T> {
    /// Creates an empty pool with room for `capacity` parked values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot pool needs at least one slot");
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    state: AtomicU8::new(VACANT),
                    value: UnsafeCell::new(None),
                })
                .collect(),
        }
    }

    /// Number of slots (the maximum of parked values).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Takes a parked value out of the pool, or `None` when every slot is
    /// vacant (the caller then constructs a fresh value — the cold start
    /// this pool exists to amortize).
    ///
    /// Lock-free: one CAS per probed slot, never a wait.
    pub fn checkout(&self) -> Option<T> {
        for slot in &*self.slots {
            if slot
                .state
                .compare_exchange(OCCUPIED, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS above made this thread the slot's sole
                // owner until it stores a non-BUSY state; the Acquire
                // pairs with the Release in `checkin`, so the value
                // written there is visible here.
                let value = unsafe { (*slot.value.get()).take() };
                slot.state.store(VACANT, Ordering::Release);
                debug_assert!(value.is_some(), "OCCUPIED slot always holds a value");
                return value;
            }
        }
        None
    }

    /// Parks `value` in the pool for a later [`SlotPool::checkout`].
    /// Returns `Some(value)` back when every slot is already occupied
    /// (the caller drops or reuses it — never blocks).
    pub fn checkin(&self, value: T) -> Option<T> {
        for slot in &*self.slots {
            if slot
                .state
                .compare_exchange(VACANT, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: as in `checkout` — the CAS grants exclusive
                // access, and the Release store below publishes the value
                // to the next Acquire checkout.
                unsafe { *slot.value.get() = Some(value) };
                slot.state.store(OCCUPIED, Ordering::Release);
                return None;
            }
        }
        Some(value)
    }

    /// Number of currently parked values (a racy snapshot under
    /// concurrent use; exact when the caller has `&mut self`).
    pub fn parked(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Acquire) == OCCUPIED)
            .count()
    }

    /// Iterates over the parked values. Requires exclusive access, so no
    /// checkout/checkin can race — used for post-run inspection (e.g.
    /// summing `QueryContext::alloc_events` across a warm pool).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.value.get_mut().as_mut())
    }
}

impl<T> std::fmt::Debug for SlotPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotPool")
            .field("capacity", &self.capacity())
            .field("parked", &self.parked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn checkout_from_empty_pool_is_none() {
        let pool: SlotPool<u32> = SlotPool::new(4);
        assert!(pool.checkout().is_none());
        assert_eq!(pool.parked(), 0);
        assert_eq!(pool.capacity(), 4);
    }

    #[test]
    fn checkin_then_checkout_roundtrips() {
        let pool = SlotPool::new(2);
        assert!(pool.checkin(String::from("warm")).is_none());
        assert_eq!(pool.parked(), 1);
        assert_eq!(pool.checkout().as_deref(), Some("warm"));
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn full_pool_returns_the_value() {
        let pool = SlotPool::new(2);
        assert!(pool.checkin(1).is_none());
        assert!(pool.checkin(2).is_none());
        assert_eq!(pool.checkin(3), Some(3));
        // Draining frees a slot again.
        assert!(pool.checkout().is_some());
        assert!(pool.checkin(3).is_none());
    }

    #[test]
    fn iter_mut_sees_every_parked_value() {
        let mut pool = SlotPool::new(3);
        pool.checkin(10u64);
        pool.checkin(20u64);
        let sum: u64 = pool.iter_mut().map(|v| *v).sum();
        assert_eq!(sum, 30);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_zero_capacity() {
        let _ = SlotPool::<u8>::new(0);
    }

    #[test]
    fn concurrent_checkout_checkin_loses_nothing() {
        // N threads repeatedly check a token out (or mint a new one) and
        // check it back in; the total token count must be conserved and
        // every parked slot must hold a valid token at the end.
        const THREADS: usize = 8;
        const ROUNDS: usize = 2_000;
        let pool: SlotPool<usize> = SlotPool::new(THREADS);
        let minted = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        let token = pool.checkout().unwrap_or_else(|| {
                            minted.fetch_add(1, Ordering::Relaxed);
                            1
                        });
                        if let Some(_back) = pool.checkin(token) {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let minted = minted.load(Ordering::Relaxed);
        let dropped = dropped.load(Ordering::Relaxed);
        assert_eq!(pool.parked(), minted - dropped, "tokens conserved");
        assert!(minted >= 1);
    }
}
