//! Exact DTW similarity search through the index (the paper's Fig. 19).
//!
//! ```text
//! cargo run --release --example dtw_search [num_series]
//! ```
//!
//! DTW tolerates temporal misalignment that Euclidean distance punishes.
//! "No changes are required in the index structure; we just have to build
//! the envelope of the LB_Keogh method around the query series, and then
//! search the index using this envelope" (§IV). This example shows (1)
//! that DTW retrieves shifted patterns ED misses, and (2) the index
//! accelerating exact DTW search vs the UCR Suite-P DTW scan.

use messi::baselines::ucr;
use messi::prelude::*;
use messi::series::znorm::znormalize_in_place;
use std::sync::Arc;

fn main() {
    let num_series: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    println!("== exact DTW search ==");
    let mut base = messi::series::gen::generate(DatasetKind::Sald, num_series, 5)
        .as_flat()
        .to_vec();

    // Plant a known pattern and, elsewhere, a *time-shifted* copy of it.
    let n = 128usize;
    let pattern: Vec<f32> = (0..n)
        .map(|i| ((i as f32) * 0.12).sin() * 2.0 + ((i as f32) * 0.53).cos())
        .collect();
    let mut shifted: Vec<f32> = (0..n)
        .map(|i| (((i + 7) as f32) * 0.12).sin() * 2.0 + (((i + 7) as f32) * 0.53).cos())
        .collect();
    znormalize_in_place(&mut shifted);
    let planted_pos = 1234usize.min(num_series - 1);
    base[planted_pos * n..(planted_pos + 1) * n].copy_from_slice(&shifted);
    let data = Arc::new(Dataset::from_flat(base, n).expect("well-shaped"));

    let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    let qconfig = QueryConfig::default();

    let mut query = pattern;
    znormalize_in_place(&mut query);
    let params = DtwParams::paper_default(n); // 10% warping window
    println!("query: planted pattern; its 7-sample-shifted copy lives at position {planted_pos}\n");

    // Euclidean search: the shift makes the planted copy a poor ED match.
    let (ed_ans, _) = index.search(&query, &qconfig);
    println!(
        "ED  1-NN: series {:<8} distance {:.4}{}",
        ed_ans.pos,
        ed_ans.distance(),
        if ed_ans.pos as usize == planted_pos {
            "  ← found the shifted copy anyway"
        } else {
            "  (NOT the shifted copy: ED is shift-sensitive)"
        }
    );

    // DTW search through the index.
    let (dtw_ans, dtw_stats) =
        messi::index::dtw::exact_search_dtw(&index, &query, params, &qconfig);
    println!(
        "DTW 1-NN: series {:<8} dtw-distance {:.4}{}",
        dtw_ans.pos,
        dtw_ans.distance(),
        if dtw_ans.pos as usize == planted_pos {
            "  ← the shifted copy, as it should be"
        } else {
            ""
        }
    );
    assert_eq!(dtw_ans.pos as usize, planted_pos);

    // Same answer, scan-style (Fig. 19's UCR Suite-p DTW).
    let (scan_ans, scan_stats) = ucr::ucr_parallel_dtw(&data, &query, params, &qconfig);
    assert_eq!(scan_ans.pos, dtw_ans.pos);
    println!(
        "\nMESSI-DTW: {:?} ({} full DTW computations)\n\
         UCR Suite-P DTW: {:?} ({} full DTW computations)\n\
         index speedup: {:.1}x",
        dtw_stats.total_time,
        dtw_stats.real_distance_calcs,
        scan_stats.total_time,
        scan_stats.real_distance_calcs,
        scan_stats.total_time.as_secs_f64() / dtw_stats.total_time.as_secs_f64().max(1e-9)
    );
}
