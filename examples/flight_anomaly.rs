//! Flight-data anomaly screening: the paper's motivating Airbus scenario.
//!
//! ```text
//! cargo run --release --example flight_anomaly [fleet_size]
//! ```
//!
//! §I of the paper: Airbus "stores petabytes of data series, describing
//! the behavior over time of various aircraft components … [analysts]
//! operate on a subset of the data … which fit in memory", building
//! in-memory indices per analysis session. A classic session: given a
//! library of *normal* sensor traces from the fleet, screen the latest
//! flight's traces — a trace whose nearest neighbor in the normal library
//! is unusually far is flagged for review.
//!
//! The 1-NN distances come from MESSI exact search; the anomaly threshold
//! is calibrated on held-out normal traces.

use messi::prelude::*;
use std::sync::Arc;

fn main() {
    let fleet_size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);

    println!("== fly-by-wire trace screening ==");
    println!("indexing {fleet_size} normal sensor traces from the fleet…");
    // Normal behaviour: smooth correlated dynamics (SALD-like generator
    // models well-behaved physical sensors).
    let normal_gen = DatasetKind::Sald.generator_with_len(1, 256);
    let library = Arc::new(messi::series::gen::generate_dataset(
        normal_gen.as_ref(),
        fleet_size,
    ));
    let (index, build) = MessiIndex::build(Arc::clone(&library), &IndexConfig::default());
    println!("library indexed in {:?}", build.total_time);

    let qconfig = QueryConfig::default();

    // Calibrate the threshold: 1-NN distance distribution of held-out
    // normal traces (same generator, disjoint seed stream).
    let calibration =
        messi::series::gen::queries::generate_queries_with_len(DatasetKind::Sald, 50, 1, 256);
    let mut calib_dists: Vec<f32> = calibration
        .iter()
        .map(|q| index.search(q, &qconfig).0.distance())
        .collect();
    calib_dists.sort_by(f32::total_cmp);
    // Flag anything beyond the 98th percentile of normal.
    let threshold = calib_dists[(calib_dists.len() * 98 / 100).min(calib_dists.len() - 1)];
    println!(
        "calibrated threshold: {threshold:.3} (98th percentile of {} normal traces)",
        calib_dists.len()
    );

    // Today's flight: mostly normal traces, with injected faults
    // (oscillation bursts — the "bearing vibration" failure signature).
    let todays_normal =
        messi::series::gen::queries::generate_queries_with_len(DatasetKind::Sald, 8, 77, 256);
    let faulty_gen = DatasetKind::Seismic.generator_with_len(1313, 256);
    let todays_faulty = messi::series::gen::generate_dataset(faulty_gen.as_ref(), 4);

    println!("\nscreening today's traces:");
    let mut flagged = 0;
    let mut missed = 0;
    for (truth, batch) in [("normal", &todays_normal), ("FAULT", &todays_faulty)] {
        for (i, q) in batch.iter().enumerate() {
            let (ans, stats) = index.search(q, &qconfig);
            let d = ans.distance();
            let verdict = if d > threshold { "⚠ FLAG" } else { "  ok " };
            if truth == "FAULT" && d > threshold {
                flagged += 1;
            }
            if truth == "FAULT" && d <= threshold {
                missed += 1;
            }
            println!(
                "  trace {truth}-{i}: nn-dist={d:<8.3} {verdict}   ({:?}, {} real dists)",
                stats.total_time, stats.real_distance_calcs
            );
        }
    }
    println!("\ninjected faults flagged: {flagged}/4 (missed: {missed})");
    assert!(
        flagged >= 3,
        "fault signatures should stand out from the library"
    );
}
