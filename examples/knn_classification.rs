//! k-NN classification on top of the index.
//!
//! ```text
//! cargo run --release --example knn_classification [library_per_class]
//! ```
//!
//! The paper motivates MESSI as the engine under "complex analytics
//! algorithms (e.g., k-NN classification)" (§I): classification of a
//! series is a majority vote among its k nearest labeled neighbors, so
//! classifying a batch means many exact k-NN queries — exactly what the
//! index accelerates.
//!
//! Three signal classes with genuinely different dynamics are indexed
//! together; held-out members of each class are classified by 5-NN vote.

use messi::prelude::*;
use std::sync::Arc;

const CLASSES: [(&str, DatasetKind); 3] = [
    ("random-walk", DatasetKind::RandomWalk),
    ("seismic", DatasetKind::Seismic),
    ("smooth", DatasetKind::Sald),
];

fn main() {
    let per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let series_len = 128usize;
    let k = 5usize;

    println!("== k-NN classification (k = {k}) ==");
    println!(
        "library: {per_class} labeled series per class × {} classes",
        CLASSES.len()
    );

    // Build one labeled library: class c owns positions
    // [c·per_class, (c+1)·per_class). Each class generates per_class +
    // per_class_tests series; the tail is held out for evaluation (so
    // test series come from the same population but are not indexed).
    let per_class_tests = 20usize;
    let mut flat = Vec::with_capacity(CLASSES.len() * per_class * series_len);
    let mut holdouts: Vec<Dataset> = Vec::new();
    for (c, (_, kind)) in CLASSES.iter().enumerate() {
        let g = kind.generator_with_len(c as u64 + 10, series_len);
        let ds = messi::series::gen::generate_dataset(g.as_ref(), per_class + per_class_tests);
        flat.extend_from_slice(&ds.as_flat()[..per_class * series_len]);
        holdouts.push(
            Dataset::from_flat(ds.as_flat()[per_class * series_len..].to_vec(), series_len)
                .expect("well-shaped"),
        );
    }
    let library = Arc::new(Dataset::from_flat(flat, series_len).expect("well-shaped"));
    let label_of = |pos: u64| (pos as usize / per_class).min(CLASSES.len() - 1);

    let (index, build) = MessiIndex::build(Arc::clone(&library), &IndexConfig::default());
    println!("library indexed in {:?}\n", build.total_time);

    let qconfig = QueryConfig::default();
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut confusion = vec![vec![0usize; CLASSES.len()]; CLASSES.len()];

    for (true_class, (name, _)) in CLASSES.iter().enumerate() {
        let tests = &holdouts[true_class];
        for q in tests.iter() {
            let (neighbors, _) = messi::index::knn::exact_knn(&index, q, k, &qconfig);
            let mut votes = [0usize; CLASSES.len()];
            for a in &neighbors {
                votes[label_of(a.pos)] += 1;
            }
            let predicted = votes
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(c, _)| c)
                .expect("non-empty");
            confusion[true_class][predicted] += 1;
            if predicted == true_class {
                correct += 1;
            }
            total += 1;
        }
        println!("classified {per_class_tests} held-out '{name}' series");
    }

    println!("\nconfusion matrix (rows = truth, cols = predicted):");
    print!("{:>14}", "");
    for (name, _) in CLASSES {
        print!("{name:>14}");
    }
    println!();
    for (t, row) in confusion.iter().enumerate() {
        print!("{:>14}", CLASSES[t].0);
        for v in row {
            print!("{v:>14}");
        }
        println!();
    }
    let accuracy = correct as f64 / total as f64;
    println!("\naccuracy: {correct}/{total} = {:.1}%", accuracy * 100.0);
    assert!(
        accuracy > 0.8,
        "classes with distinct dynamics should classify well"
    );
}
