//! Ad-hoc layout throughput probe: times the leaf-scan-heavy paths the
//! storage layouts target, over a shallow paper-default index and a
//! deep split-heavy one. Since the run-grouped struct-of-arrays
//! transpose the probe contrasts three sweeps directly: the interleaved
//! AoS entry records, the packed SoA symbol columns chunked *per leaf*
//! (the pre-run-batching engine path), and the SoA columns streamed
//! over whole *leaf runs* — next to the run-length distribution the
//! greedy partition produced and the footprint each layout pays per
//! entry. Used to record the numbers in README's bench notes.
//!
//! `--leaf-target <N|auto>` overrides the paper-default split threshold
//! (auto = `messi::index::auto_leaf_capacity`). Every sweep prints an
//! order-independent per-entry bit checksum, so CI can sweep thresholds
//! and assert the lower-bound tier computes identical values on every
//! tree shape.

use messi::index::node::LeafEntry;
use messi::prelude::*;
use messi::sax::mindist::MindistTable;
use messi::series::paa::paa;
use std::sync::Arc;
use std::time::Instant;

const CACHE_LINE: usize = 64;

/// Order-independent checksum of per-entry lower bounds: wrapping sum of
/// the `f32` bit patterns. Exactly equal across chunkings and across
/// tree shapes whenever every entry's bound is bit-identical.
fn bit_checksum(acc: &mut u64, v: f32) {
    *acc = acc.wrapping_add(u64::from(v.to_bits()));
}

fn probe(label: &str, data: &Arc<Dataset>, config: &IndexConfig) -> u64 {
    let t = Instant::now();
    let (index, _) = MessiIndex::build(Arc::clone(data), config);
    let build = t.elapsed();
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 12);
    let q = queries.series(0);
    let one = QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::default()
    };

    // Footprint per entry, per layout. The AoS record interleaves the
    // SAX word with the result payload (pos); the SoA pool stores the
    // bound-relevant symbols alone, so one cache line of column bytes
    // covers 64 entries' segment-s symbols instead of 4 whole records.
    let entries: usize = index.arenas().iter().map(|a| a.num_entries()).sum();
    let aos_bytes = std::mem::size_of::<LeafEntry>();
    let col_bytes: usize = index.arenas().iter().map(|a| a.col_bytes()).sum();
    println!(
        "{label}: {entries} entries · AoS {aos_bytes} B/entry \
         ({:.1} entries/cache-line) · SoA {} B/entry \
         ({CACHE_LINE} entries/cache-line per segment)",
        CACHE_LINE as f64 / aos_bytes as f64,
        col_bytes / entries.max(1),
    );

    // The run partition the greedy grouping produced: how many member
    // leaves and entries each run carries decides how often the batched
    // kernel sees full 8-wide chunks.
    let shapes: Vec<(usize, usize)> = index.arenas().iter().flat_map(|a| a.run_shapes()).collect();
    let runs = shapes.len().max(1);
    let (leaves, run_entries): (usize, usize) =
        shapes.iter().fold((0, 0), |(l, e), s| (l + s.0, e + s.1));
    let mut hist = [0usize; 4]; // 1, 2-4, 5-8, 9+ member leaves
    for s in &shapes {
        hist[match s.0 {
            0..=1 => 0,
            2..=4 => 1,
            5..=8 => 2,
            _ => 3,
        }] += 1;
    }
    println!(
        "  runs {runs} · {:.2} leaves/run · {:.1} entries/run · \
         leaves-per-run histogram 1:{} 2-4:{} 5-8:{} 9+:{}",
        leaves as f64 / runs as f64,
        run_entries as f64 / runs as f64,
        hist[0],
        hist[1],
        hist[2],
        hist[3],
    );

    // The mindist sweep all layouts exist to serve: one table, every
    // leaf, lower bounds for all entries. AoS walks the records one by
    // one; per-leaf SoA restarts its 8-wide chunking at each leaf (so a
    // 6-entry leaf is one partial chunk); run-batched SoA chunks across
    // the whole run and only the final chunk can be partial.
    let segments = index.sax_config().segments;
    let table = MindistTable::new(&paa(q, segments), index.sax_config());
    let iters = 200u32;

    let t = Instant::now();
    for _ in 0..iters {
        let mut acc = 0.0f32;
        for arena in index.arenas() {
            arena.for_each_leaf(&mut |l| {
                for e in l.entries {
                    acc += table.mindist_sq(&e.sax);
                }
            });
        }
        std::hint::black_box(acc);
    }
    let aos_sweep = t.elapsed() / iters;

    let mut leaf_times = Vec::new();
    for use_simd in [true, false] {
        let t = Instant::now();
        for _ in 0..iters {
            let mut acc = 0.0f32;
            let mut out = [0.0f32; 8];
            for arena in index.arenas() {
                arena.for_each_leaf(&mut |l| {
                    let n = l.entries.len();
                    let mut base = 0;
                    while base < n {
                        let len = (n - base).min(8);
                        table.mindist_sq_soa(
                            l.cols,
                            l.stride,
                            l.base + base,
                            len,
                            use_simd,
                            &mut out,
                        );
                        acc += out[..len].iter().sum::<f32>();
                        base += len;
                    }
                });
            }
            std::hint::black_box(acc);
        }
        leaf_times.push(t.elapsed() / iters);
    }

    let mut run_times = Vec::new();
    for use_simd in [true, false] {
        let t = Instant::now();
        for _ in 0..iters {
            let mut acc = 0.0f32;
            let mut out = [0.0f32; 8];
            for arena in index.arenas() {
                arena.for_each_run(&mut |es, cols, stride| {
                    let n = es.len();
                    let mut base = 0;
                    while base < n {
                        let len = (n - base).min(8);
                        table.mindist_sq_soa(cols, stride, base, len, use_simd, &mut out);
                        acc += out[..len].iter().sum::<f32>();
                        base += len;
                    }
                });
            }
            std::hint::black_box(acc);
        }
        run_times.push(t.elapsed() / iters);
    }

    // Sanity, two tiers. Bit tier: per-leaf and run-batched chunkings of
    // the SoA kernel must produce bit-identical per-entry bounds, so
    // their order-independent bit checksums must be *equal* — this is
    // the value CI sweeps across leaf thresholds. Value tier: AoS agrees
    // with SoA (f64 accumulation so the check isn't at the mercy of
    // 50k-term f32 summation order).
    let mut aos_sum = 0.0f64;
    let mut soa_sum = 0.0f64;
    let mut leaf_bits = 0u64;
    let mut run_bits = 0u64;
    let mut out = [0.0f32; 8];
    for arena in index.arenas() {
        arena.for_each_leaf(&mut |l| {
            for e in l.entries {
                aos_sum += f64::from(table.mindist_sq(&e.sax));
            }
            let n = l.entries.len();
            let mut base = 0;
            while base < n {
                let len = (n - base).min(8);
                table.mindist_sq_soa(l.cols, l.stride, l.base + base, len, true, &mut out);
                for &v in &out[..len] {
                    soa_sum += f64::from(v);
                    bit_checksum(&mut leaf_bits, v);
                }
                base += len;
            }
        });
        arena.for_each_run(&mut |es, cols, stride| {
            let n = es.len();
            let mut base = 0;
            while base < n {
                let len = (n - base).min(8);
                table.mindist_sq_soa(cols, stride, base, len, true, &mut out);
                for &v in &out[..len] {
                    bit_checksum(&mut run_bits, v);
                }
                base += len;
            }
        });
    }
    assert!((aos_sum - soa_sum).abs() <= 1e-3 * aos_sum.abs() + 1e-3);
    assert_eq!(
        leaf_bits, run_bits,
        "run-batched chunking changed a lower bound bit"
    );

    let t = Instant::now();
    let iters = 50u32;
    for _ in 0..iters {
        let _ = index.search(q, &one);
    }
    let exact = t.elapsed() / iters;

    println!(
        "  build {build:.2?} · leaves {} · height {} · mindist sweep: \
         aos {aos_sweep:.3?} · per-leaf simd {:.3?} / scalar {:.3?} · \
         run-batched simd {:.3?} / scalar {:.3?} · exact_1w {exact:.3?}",
        index.num_leaves(),
        index.max_height(),
        leaf_times[0],
        leaf_times[1],
        run_times[0],
        run_times[1],
    );
    println!("  checksum {run_bits:#018x}");
    run_bits
}

fn main() {
    let n = 50_000;
    let mut leaf_target: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--leaf-target" => {
                let v = args.next().expect("--leaf-target needs a value");
                leaf_target = Some(if v == "auto" {
                    messi::index::auto_leaf_capacity(n)
                } else {
                    v.parse()
                        .expect("--leaf-target: expected a number or 'auto'")
                });
            }
            other => panic!("unknown argument {other:?} (expected --leaf-target <N|auto>)"),
        }
    }

    let data = Arc::new(messi::series::gen::generate(DatasetKind::RandomWalk, n, 12));
    let sparse = IndexConfig {
        leaf_capacity: leaf_target.unwrap_or(IndexConfig::default().leaf_capacity),
        ..IndexConfig::default()
    };
    let label = match leaf_target {
        Some(t) => format!("shallow(leaf-target={t})"),
        None => "shallow(paper-default)".to_string(),
    };
    probe(&label, &data, &sparse);
    probe(
        "deep(seg8/leaf64)",
        &data,
        &IndexConfig {
            segments: 8,
            leaf_capacity: 64,
            ..IndexConfig::default()
        },
    );
}
