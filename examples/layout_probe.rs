//! Ad-hoc layout throughput probe: times the leaf-scan-heavy paths the
//! storage layouts target, over a shallow paper-default index and a
//! deep split-heavy one. Since the struct-of-arrays transpose the probe
//! contrasts the two leaf layouts directly: the same per-query mindist
//! table swept over every leaf through the interleaved AoS entry
//! records versus the packed SoA symbol columns, next to the footprint
//! each layout pays per entry. Used to record the numbers in README's
//! bench notes.

use messi::index::node::LeafEntry;
use messi::prelude::*;
use messi::sax::mindist::MindistTable;
use messi::series::paa::paa;
use std::sync::Arc;
use std::time::Instant;

const CACHE_LINE: usize = 64;

fn probe(label: &str, data: &Arc<Dataset>, config: &IndexConfig) {
    let t = Instant::now();
    let (index, _) = MessiIndex::build(Arc::clone(data), config);
    let build = t.elapsed();
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 12);
    let q = queries.series(0);
    let one = QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::default()
    };

    // Footprint per entry, per layout. The AoS record interleaves the
    // SAX word with the result payload (pos); the SoA pool stores the
    // bound-relevant symbols alone, so one cache line of column bytes
    // covers 64 entries' segment-s symbols instead of 4 whole records.
    let entries: usize = index
        .touched_keys()
        .iter()
        .map(|&k| index.root(k).unwrap().num_entries())
        .sum();
    let aos_bytes = std::mem::size_of::<LeafEntry>();
    let col_bytes: usize = index
        .touched_keys()
        .iter()
        .map(|&k| index.root(k).unwrap().col_bytes())
        .sum();
    println!(
        "{label}: {entries} entries · AoS {aos_bytes} B/entry \
         ({:.1} entries/cache-line) · SoA {} B/entry \
         ({CACHE_LINE} entries/cache-line per segment)",
        CACHE_LINE as f64 / aos_bytes as f64,
        col_bytes / entries.max(1),
    );

    // The mindist sweep both layouts exist to serve: one table, every
    // leaf, lower bounds for all entries. AoS walks the records one by
    // one; SoA batches 8 per kernel call over the symbol columns.
    let segments = index.sax_config().segments;
    let table = MindistTable::new(&paa(q, segments), index.sax_config());
    let iters = 200u32;

    let t = Instant::now();
    for _ in 0..iters {
        let mut acc = 0.0f32;
        for &key in index.touched_keys() {
            index.root(key).unwrap().for_each_leaf(&mut |l| {
                for e in l.entries {
                    acc += table.mindist_sq(&e.sax);
                }
            });
        }
        std::hint::black_box(acc);
    }
    let aos_sweep = t.elapsed() / iters;

    let mut soa_times = Vec::new();
    for use_simd in [true, false] {
        let t = Instant::now();
        for _ in 0..iters {
            let mut acc = 0.0f32;
            let mut out = [0.0f32; 8];
            for &key in index.touched_keys() {
                index.root(key).unwrap().for_each_leaf(&mut |l| {
                    let n = l.entries.len();
                    let mut base = 0;
                    while base < n {
                        let len = (n - base).min(8);
                        table.mindist_sq_soa(l.cols, n, base, len, use_simd, &mut out);
                        acc += out[..len].iter().sum::<f32>();
                        base += len;
                    }
                });
            }
            std::hint::black_box(acc);
        }
        soa_times.push(t.elapsed() / iters);
    }

    // Sanity: both layouts produce the same bounds (f64 accumulation so
    // the check isn't at the mercy of 50k-term f32 summation order).
    let mut aos_sum = 0.0f64;
    let mut soa_sum = 0.0f64;
    let mut out = [0.0f32; 8];
    for &key in index.touched_keys() {
        index.root(key).unwrap().for_each_leaf(&mut |l| {
            let n = l.entries.len();
            for e in l.entries {
                aos_sum += f64::from(table.mindist_sq(&e.sax));
            }
            let mut base = 0;
            while base < n {
                let len = (n - base).min(8);
                table.mindist_sq_soa(l.cols, n, base, len, true, &mut out);
                soa_sum += out[..len].iter().map(|&v| f64::from(v)).sum::<f64>();
                base += len;
            }
        });
    }
    assert!((aos_sum - soa_sum).abs() <= 1e-3 * aos_sum.abs() + 1e-3);

    let t = Instant::now();
    let iters = 50u32;
    for _ in 0..iters {
        let _ = index.search(q, &one);
    }
    let exact = t.elapsed() / iters;

    println!(
        "  build {build:.2?} · leaves {} · height {} · mindist sweep: \
         aos {aos_sweep:.3?} · soa_simd {:.3?} · soa_scalar {:.3?} · \
         exact_1w {exact:.3?}",
        index.num_leaves(),
        index.max_height(),
        soa_times[0],
        soa_times[1],
    );
}

fn main() {
    let n = 50_000;
    let data = Arc::new(messi::series::gen::generate(DatasetKind::RandomWalk, n, 12));
    probe("shallow(paper-default)", &data, &IndexConfig::default());
    probe(
        "deep(seg8/leaf64)",
        &data,
        &IndexConfig {
            segments: 8,
            leaf_capacity: 64,
            ..IndexConfig::default()
        },
    );
}
