//! Ad-hoc layout throughput probe: times the leaf-scan-heavy paths the
//! arena layout targets, over a shallow paper-default index and a deep
//! split-heavy one. Used to record the before/after numbers in README's
//! bench notes (run it at the pre-arena commit for "before").

use messi::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn probe(label: &str, data: &Arc<Dataset>, config: &IndexConfig) {
    let t = Instant::now();
    let (index, _) = MessiIndex::build(Arc::clone(data), config);
    let build = t.elapsed();
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 12);
    let q = queries.series(0);
    let qc = QueryConfig::default();
    let one = QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::default()
    };
    let (_, nn) = data.nearest_neighbor_brute_force(q);

    // Full leaf sweep: pure storage traversal.
    let iters = 200u32;
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        for &key in index.touched_keys() {
            index
                .root(key)
                .unwrap()
                .for_each_leaf(&mut |l| acc += l.entries.iter().map(|e| e.pos as u64).sum::<u64>());
        }
    }
    let sweep = t.elapsed() / iters;

    let iters = 50u32;
    let t = Instant::now();
    for _ in 0..iters {
        let _ = index.search_range(q, nn * 16.0, &qc);
    }
    let range = t.elapsed() / iters;

    let t = Instant::now();
    for _ in 0..iters {
        let _ = index.search(q, &one);
    }
    let exact = t.elapsed() / iters;

    println!(
        "{label}: build {build:.2?} · leaves {} · height {} · sweep {sweep:.3?} · \
         range_wide {range:.3?} · exact_1w {exact:.3?} (acc {acc})",
        index.num_leaves(),
        index.max_height()
    );
}

fn main() {
    let n = 50_000;
    let data = Arc::new(messi::series::gen::generate(DatasetKind::RandomWalk, n, 12));
    probe("shallow(paper-default)", &data, &IndexConfig::default());
    probe(
        "deep(seg8/leaf64)",
        &data,
        &IndexConfig {
            segments: 8,
            leaf_capacity: 64,
            ..IndexConfig::default()
        },
    );
}
