//! Quickstart: build a MESSI index and answer exact similarity queries.
//!
//! ```text
//! cargo run --release --example quickstart [num_series]
//! ```
//!
//! Generates a random-walk collection (the paper's synthetic workload),
//! builds the index with the paper's default parameters, and runs a few
//! exact 1-NN and k-NN queries, printing timings and pruning statistics.

use messi::prelude::*;
use std::sync::Arc;

fn main() {
    let num_series: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    println!("== MESSI quickstart ==");
    println!(
        "generating {num_series} random-walk series of length 256 ({} MB raw)…",
        num_series * 256 * 4 / (1 << 20)
    );
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        num_series,
        42,
    ));

    let config = IndexConfig::default();
    println!(
        "building index: w={} segments, {} workers, {}-series chunks, leaf capacity {}",
        config.segments, config.num_workers, config.chunk_size, config.leaf_capacity
    );
    let (index, build) = MessiIndex::build(Arc::clone(&data), &config);
    println!(
        "built in {:?} (summaries {:?} + tree {:?}); {} leaves across {} root subtrees, height ≤ {}",
        build.total_time,
        build.summarize_time,
        build.tree_time,
        build.num_leaves,
        build.num_root_subtrees,
        build.max_height
    );

    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 42);
    let qconfig = QueryConfig::default();
    println!(
        "\nanswering 5 exact 1-NN queries ({} search workers, {} priority queues)…",
        qconfig.num_workers, qconfig.num_queues
    );
    for (i, q) in queries.iter().enumerate() {
        let (answer, stats) = index.search(q, &qconfig);
        println!(
            "  query {i}: nn=series#{:<8} dist={:<8.4} in {:>9.3?}  \
             (lower bounds: {:>7}, real distances: {:>5}, pruned {:.1}% of collection)",
            answer.pos,
            answer.distance(),
            stats.total_time,
            stats.lb_distance_calcs,
            stats.real_distance_calcs,
            100.0 * (1.0 - stats.real_distance_calcs as f64 / num_series as f64),
        );
    }

    // Exact k-NN: the building block of the paper's k-NN classification.
    let (top5, _) = messi::index::knn::exact_knn(&index, queries.series(0), 5, &qconfig);
    println!("\ntop-5 neighbors of query 0:");
    for (rank, a) in top5.iter().enumerate() {
        println!(
            "  #{rank}: series {:<8} distance {:.4}",
            a.pos,
            a.distance()
        );
    }

    // Sanity: the index answer is exactly the brute-force answer.
    let (bf_pos, bf_dist) = data.nearest_neighbor_brute_force(queries.series(0));
    assert_eq!(top5[0].pos as usize, bf_pos);
    assert!((top5[0].dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0));
    println!("\nverified: answers match a brute-force scan exactly ✓");
}
