//! Seismic similarity monitoring: the paper's Seismic-dataset scenario.
//!
//! ```text
//! cargo run --release --example seismic_monitoring [num_series]
//! ```
//!
//! Analysts at a seismological institute want to compare each incoming
//! waveform against a large archive of historical recordings — the IRIS
//! use case behind the paper's Seismic dataset. This example indexes a
//! synthetic seismic archive, then streams "new" waveforms and retrieves
//! their nearest historical matches, comparing MESSI against the UCR
//! Suite-P scan on the same queries (Fig. 16's comparison, at laptop
//! scale).

use messi::baselines::ucr;
use messi::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let num_series: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    println!("== seismic archive monitoring ==");
    println!("indexing {num_series} archived waveforms (256 samples each)…");
    let archive = Arc::new(messi::series::gen::generate(
        DatasetKind::Seismic,
        num_series,
        2024,
    ));
    let (index, build) = MessiIndex::build(Arc::clone(&archive), &IndexConfig::default());
    println!(
        "archive indexed in {:?} ({} leaves)",
        build.total_time, build.num_leaves
    );

    // Incoming waveforms: a mix of (noisy) repeats of archived events and
    // genuinely new activity.
    let repeats = messi::series::gen::queries::noisy_queries_from_dataset(&archive, 6, 0.15, 7);
    let novel = messi::series::gen::queries::generate_queries(DatasetKind::Seismic, 4, 99);
    let qconfig = QueryConfig::default();

    let mut messi_total = Duration::ZERO;
    let mut ucr_total = Duration::ZERO;
    println!("\nincoming waveforms:");
    for (label, batch) in [("repeat", &repeats), ("novel", &novel)] {
        for q in batch.iter() {
            let (ans, stats) = index.search(q, &qconfig);
            messi_total += stats.total_time;
            let (ucr_ans, ucr_stats) = ucr::ucr_parallel(&archive, q, &qconfig);
            ucr_total += ucr_stats.total_time;
            assert_eq!(ans.pos, ucr_ans.pos, "exact algorithms must agree");
            println!(
                "  [{label}] best match: event#{:<8} dist={:<8.4} \
                 MESSI {:>9.3?} vs scan {:>9.3?} (examined {:>6}/{} series)",
                ans.pos,
                ans.distance(),
                stats.total_time,
                ucr_stats.total_time,
                stats.real_distance_calcs,
                num_series
            );
        }
    }
    println!(
        "\ntotals over {} queries: MESSI {:?}, UCR Suite-P {:?} ({:.1}x)",
        repeats.len() + novel.len(),
        messi_total,
        ucr_total,
        ucr_total.as_secs_f64() / messi_total.as_secs_f64().max(1e-9)
    );
    println!(
        "note: seismic-like data prunes worse than random walks (paper §IV-C),\n\
         so the speedup here is lower than on the Random dataset."
    );
}
