//! Offline shim for the `criterion` crate.
//!
//! Implements the benchmark-definition surface this workspace uses
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`]) with a plain wall-clock measurement
//! loop: per benchmark it warms up briefly, sizes an iteration batch to
//! a fixed time budget, and reports the mean and minimum time per
//! iteration. No statistical analysis, outlier detection, HTML reports,
//! or `target/criterion` history.
//!
//! See `shims/README.md` for the swap-to-real-crate procedure.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// An opaque barrier against compiler over-optimization of benchmark
/// bodies. Mirror of `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Runs `body` repeatedly and records its mean per-iteration time:
    /// a short warm-up sizes a batch to a fixed time budget, then
    /// `samples` batches are timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        const WARMUP: Duration = Duration::from_millis(20);
        const BUDGET: Duration = Duration::from_millis(100);

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(body());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / warm_iters.max(1) as u128;

        let samples = self.samples.max(1) as u64;
        let per_sample =
            (BUDGET.as_nanos() / samples as u128 / per_iter.max(1)).clamp(1, 1 << 24) as u64;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(body());
            }
            let elapsed = t.elapsed();
            total += elapsed;
            best = best.min(elapsed);
        }
        let iters = samples * per_sample;
        self.result = Some((total / iters as u32, best / per_sample as u32));
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!(
                        "  ({:.1} Melem/s)",
                        n as f64 / mean.as_nanos().max(1) as f64 * 1e3
                    )
                }
                Throughput::Bytes(n) => {
                    format!(
                        "  ({:.1} MB/s)",
                        n as f64 / mean.as_nanos().max(1) as f64 * 1e3
                    )
                }
            });
            println!(
                "bench: {id:<48} mean {:>10}   min {:>10}{}",
                human(mean),
                human(min),
                rate.unwrap_or_default()
            );
        }
        None => println!("bench: {id:<48} (no measurement: closure never called iter)"),
    }
}

/// Benchmark registry/driver. Mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Defines and immediately runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Defines and runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a named group of benchmark functions. Mirror of
/// `criterion::criterion_group!`; supports both the positional and the
/// `name =` / `config =` / `targets =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates a `main` that runs the given groups. Mirror of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(31))
    }

    fn quick(c: &mut Criterion) {
        c.bench_function("sum_to_1000", |b| b.iter(|| sum_to(black_box(1000))));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("param", 64), &64u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| sum_to(7)));
        g.finish();
    }

    #[test]
    fn macros_and_driver_run() {
        criterion_group!(smoke, quick);
        smoke();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("messi", 24).to_string(), "messi/24");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
