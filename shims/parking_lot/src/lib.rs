//! Offline std-backed shim for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this package
//! provides the (small) `parking_lot` surface the workspace uses, backed
//! by `std::sync`. The key API differences from `std` that callers rely
//! on are reproduced:
//!
//! * [`Mutex::lock`] returns the guard directly (no `LockResult`);
//!   poisoning is swallowed by taking the inner value, matching
//!   `parking_lot`'s poison-free behavior.
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming it.
//!
//! See `shims/README.md` for the swap-to-real-crate procedure.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily move
/// the underlying std guard out while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex in an unlocked state.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard moved during wait")
    }
}

/// A condition variable, API-compatible with `parking_lot::Condvar`.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks the current thread until this condition variable is
    /// notified. The mutex is atomically released while waiting and
    /// re-acquired (in `guard`) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard moved during wait");
        let std_guard = self
            .0
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one thread blocked on this condition variable.
    ///
    /// Divergence from `parking_lot`: the real crate returns whether a
    /// thread was woken, which `std::sync::Condvar` cannot report. This
    /// shim returns `()` so count-dependent callers fail at compile
    /// time instead of silently branching on a fabricated constant.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all threads blocked on this condition variable.
    ///
    /// Divergence from `parking_lot`: the real crate returns the number
    /// of woken threads, which `std::sync::Condvar` cannot report. This
    /// shim returns `()` so count-dependent callers fail at compile
    /// time instead of silently branching on a fabricated constant.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(l.into_inner(), 8);
    }
}
