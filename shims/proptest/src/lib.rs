//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`, range /
//! tuple / vec / bool strategies, and
//! [`ProptestConfig::with_cases`](test_runner::Config::with_cases).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message instead of a minimized counterexample.
//! * **Deterministic.** Cases are drawn from a SplitMix64 stream seeded
//!   by the test's name, so failures reproduce exactly across runs and
//!   machines.
//!
//! See `shims/README.md` for the swap-to-real-crate procedure.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Mirror of `proptest::test_runner::Config` (`ProptestConfig`):
    /// only the `cases` knob is supported.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// SplitMix64: tiny, fast, and plenty random for test-case
    /// generation. Seeded from the test name so every test draws an
    /// independent, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded deterministically from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)` with 24 bits of precision.
        pub fn unit_f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }

        /// A uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            self.next_u64() as u128 % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    ///
    /// Mirror of `proptest::strategy::Strategy`, reduced to generation
    /// (no shrink trees).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (mirror of `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            self.start + rng.unit_f32() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f32() as f64 * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A strategy producing one fixed value (mirror of `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// The size parameter of [`vec()`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec-size range");
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size` (mirror of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Mirror of `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` that draws `cases` inputs (from the optional leading
/// `#![proptest_config(...)]`, default 256) and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (@impl [$config:expr] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let describe = ::std::format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> () { $body }),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "property {} failed at case {case}/{}; inputs:\n{describe}",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
    (#![proptest_config($config:expr)] $($rest:tt)+) => {
        $crate::proptest!(@impl [$config] $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(@impl [$crate::test_runner::Config::default()] $($rest)+);
    };
}

/// Mirror of `proptest::prop_assert!`: assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f32, f32)> {
        (0.0f32..1.0, 0.0f32..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f32..5.0, n in 1usize..10, b in crate::bool::ANY) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_sizes_respect_bounds(
            v in crate::collection::vec(0u8..=255, 3..=7),
            fixed in crate::collection::vec(0u64..9, 4),
        ) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(fixed.iter().all(|&x| x < 9));
        }

        #[test]
        fn prop_map_composes(p in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
