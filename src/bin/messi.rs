//! `messi` — command-line interface to the index.
//!
//! ```text
//! messi generate --kind random --count 100000 --out data.mds [--len 256] [--seed 42]
//! messi info     --data data.mds
//! messi query    --data data.mds [--queries q.mds | --num-queries 10] [--k 5] [--dtw]
//! messi range    --data data.mds --epsilon 5.0 [--num-queries 5] [--dtw]
//! ```
//!
//! Datasets live in the `.mds` container of `messi::series::io`. Queries
//! can come from a second file or be generated on the fly. All searches
//! are exact; per-query pruning statistics are printed.

use messi::prelude::*;
use messi::series::io::{read_dataset, write_dataset};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "query" => cmd_query(&opts),
        "range" => cmd_range(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "messi — in-memory data series indexing (MESSI, ICDE 2020)

USAGE:
  messi generate --kind <random|seismic|sald> --count <N> --out <file.mds>
                 [--len <points>] [--seed <u64>]
  messi info     --data <file.mds>
  messi query    --data <file.mds> [--queries <file.mds>] [--num-queries <N>]
                 [--k <K>] [--dtw] [--seed <u64>]
  messi range    --data <file.mds> --epsilon <dist> [--num-queries <N>] [--dtw] [--seed <u64>]

Generated queries come from the same family as --kind (members + noise
for real-data stand-ins). All searches are exact.";

/// Parsed `--key value` options.
struct Opts(Vec<(String, String)>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got `{key}`"));
            };
            if name == "dtw" {
                out.push((name.to_string(), "true".to_string()));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            out.push((name.to_string(), value.clone()));
        }
        Ok(Self(out))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{name}: `{v}`")),
        }
    }
}

fn kind_from(name: &str) -> Result<DatasetKind, String> {
    match name {
        "random" | "random-walk" => Ok(DatasetKind::RandomWalk),
        "seismic" => Ok(DatasetKind::Seismic),
        "sald" => Ok(DatasetKind::Sald),
        other => Err(format!("unknown kind `{other}` (random|seismic|sald)")),
    }
}

fn load(opts: &Opts) -> Result<Arc<Dataset>, String> {
    let path = PathBuf::from(opts.required("data")?);
    read_dataset(&path)
        .map(Arc::new)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let kind = kind_from(opts.required("kind")?)?;
    let count: usize = opts
        .required("count")?
        .parse()
        .map_err(|_| "invalid --count")?;
    let out = PathBuf::from(opts.required("out")?);
    let len: usize = opts.parsed("len", kind.paper_series_len())?;
    let seed: u64 = opts.parsed("seed", 42u64)?;
    let generator = kind.generator_with_len(seed, len);
    let t = std::time::Instant::now();
    let ds = messi::series::gen::generate_dataset(generator.as_ref(), count);
    write_dataset(&ds, &out).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "wrote {} series × {} points ({} MB) to {} in {:.2?}",
        ds.len(),
        ds.series_len(),
        ds.raw_bytes() / (1 << 20),
        out.display(),
        t.elapsed()
    );
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let data = load(opts)?;
    println!(
        "dataset: {} series × {} points, {} MB raw",
        data.len(),
        data.series_len(),
        data.raw_bytes() / (1 << 20)
    );
    if let Some((pos, idx)) = data.find_non_finite() {
        return Err(format!(
            "series {pos} has a non-finite value at point {idx}; \
             similarity search over NaN/∞ is undefined"
        ));
    }
    let t = std::time::Instant::now();
    let (index, stats) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    println!(
        "index:   built in {:.2?} (summaries {:.2?} + tree {:.2?})",
        stats.total_time, stats.summarize_time, stats.tree_time
    );
    println!(
        "         {} leaves across {} root subtrees, height ≤ {}",
        stats.num_leaves, stats.num_root_subtrees, stats.max_height
    );
    let _ = (index, t);
    Ok(())
}

fn queries_for_cli(opts: &Opts, data: &Arc<Dataset>) -> Result<Dataset, String> {
    if let Some(qpath) = opts.get("queries") {
        let qs = read_dataset(&PathBuf::from(qpath)).map_err(|e| format!("{qpath}: {e}"))?;
        if qs.series_len() != data.series_len() {
            return Err(format!(
                "query length {} ≠ dataset length {}",
                qs.series_len(),
                data.series_len()
            ));
        }
        return Ok(qs);
    }
    let n: usize = opts.parsed("num-queries", 10usize)?;
    let seed: u64 = opts.parsed("seed", 42u64)?;
    Ok(messi::series::gen::queries::noisy_queries_from_dataset(
        data, n, 0.1, seed,
    ))
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let data = load(opts)?;
    let queries = queries_for_cli(opts, &data)?;
    let k: usize = opts.parsed("k", 1usize)?;
    let use_dtw = opts.get("dtw").is_some();
    let (index, build) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    println!(
        "index built in {:.2?}; answering {} queries…",
        build.total_time,
        queries.len()
    );
    let config = QueryConfig::default();
    for (qi, q) in queries.iter().enumerate() {
        if use_dtw && k > 1 {
            let params = DtwParams::paper_default(data.series_len());
            let (answers, stats) = messi::index::knn::exact_knn_dtw(&index, q, k, params, &config);
            let list: Vec<String> = answers
                .iter()
                .map(|a| format!("#{}@{:.3}", a.pos, a.distance()))
                .collect();
            println!(
                "query {qi}: dtw top-{k} [{}] in {:.2?}",
                list.join(", "),
                stats.total_time
            );
        } else if use_dtw {
            let params = DtwParams::paper_default(data.series_len());
            let (ans, stats) = messi::index::dtw::exact_search_dtw(&index, q, params, &config);
            println!(
                "query {qi}: dtw-nn=series#{} dist={:.4} in {:.2?} ({} DTW computations)",
                ans.pos,
                ans.distance(),
                stats.total_time,
                stats.real_distance_calcs
            );
        } else if k > 1 {
            let (answers, stats) = messi::index::knn::exact_knn(&index, q, k, &config);
            let list: Vec<String> = answers
                .iter()
                .map(|a| format!("#{}@{:.3}", a.pos, a.distance()))
                .collect();
            println!(
                "query {qi}: top-{k} [{}] in {:.2?}",
                list.join(", "),
                stats.total_time
            );
        } else {
            let (ans, stats) = index.search(q, &config);
            println!(
                "query {qi}: nn=series#{} dist={:.4} in {:.2?} ({} real distances, {:.2}% pruned)",
                ans.pos,
                ans.distance(),
                stats.total_time,
                stats.real_distance_calcs,
                100.0 * (1.0 - stats.real_distance_calcs as f64 / data.len() as f64)
            );
        }
    }
    Ok(())
}

fn cmd_range(opts: &Opts) -> Result<(), String> {
    let data = load(opts)?;
    let epsilon: f32 = opts
        .required("epsilon")?
        .parse()
        .map_err(|_| "invalid --epsilon")?;
    if epsilon.is_nan() || epsilon < 0.0 {
        return Err("--epsilon must be non-negative".into());
    }
    let use_dtw = opts.get("dtw").is_some();
    let queries = queries_for_cli(opts, &data)?;
    let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    let config = QueryConfig::default();
    // User supplies a distance; the search APIs want it squared.
    let epsilon_sq = epsilon * epsilon;
    for (qi, q) in queries.iter().enumerate() {
        let (matches, stats) = if use_dtw {
            let params = DtwParams::paper_default(data.series_len());
            messi::index::range::range_search_dtw(&index, q, epsilon_sq, params, &config)
        } else {
            messi::index::range::range_search(&index, q, epsilon_sq, &config)
        };
        let preview: Vec<String> = matches
            .iter()
            .take(8)
            .map(|a| format!("#{}@{:.3}", a.pos, a.distance()))
            .collect();
        println!(
            "query {qi}: {} series within {}ε={epsilon} in {:.2?} [{}{}]",
            matches.len(),
            if use_dtw { "DTW " } else { "" },
            stats.total_time,
            preview.join(", "),
            if matches.len() > 8 { ", …" } else { "" }
        );
    }
    Ok(())
}
