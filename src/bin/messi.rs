//! `messi` — command-line interface to the index.
//!
//! ```text
//! messi generate    --kind random --count 100000 --out data.mds [--len 256] [--seed 42]
//! messi build       --data data.mds --save index.msx [--shards N]
//! messi info        --data data.mds [--load index.msx] [--shards N]
//! messi query       --data data.mds [--queries q.mds | --num-queries 10] [--k 5] [--dtw] [--load index.msx] [--shards N]
//! messi range       --data data.mds --epsilon 5.0 [--num-queries 5] [--dtw] [--load index.msx] [--shards N]
//! messi bench-query --data data.mds --objective {exact|knn|range|approx} --schedule {intra|inter} [--dtw] [--load index.msx] [--shards N] [--json out.json]
//! messi serve       --data data.mds [--load index.msx] [--addr 127.0.0.1:7700] [--threads N] [--admission N] [--shards N] [--ingest-log delta.log]
//! messi ingest      --addr 127.0.0.1:7700 --data new.mds [--batch N]
//! messi compact     --data data.mds --log delta.log [--load index.msx|dir] [--save index.msx|dir]
//! messi load-smoke  --addr 127.0.0.1:7700 --data data.mds [--clients N] [--per-client M] [--objective …]
//! ```
//!
//! Datasets live in the `.mds` container of `messi::series::io`; built
//! indexes persist in the `.msx` snapshot container of
//! `messi::index::persist` (`build --save` writes one, `--load` answers
//! from it without rebuilding). With `--shards N` the collection is
//! partitioned into N independently-built index shards queried by
//! scatter-gather with a shared cross-shard best-so-far; `--save` then
//! writes a snapshot *directory* (`shard-I.messi` files plus a
//! checksummed manifest) and `--load` of a directory restores it,
//! loading shards in parallel. Queries can come from a second file or be
//! generated on the fly. Searches are exact unless `--objective approx`
//! selects the δ-ε-approximate mode; per-query pruning statistics are
//! printed. `bench-query` drives the pooled query executor over a whole
//! batch — any objective × metric × schedule — and reports aggregate
//! throughput plus the paper's Fig. 13 per-phase breakdown
//! (`--breakdown`); for the approximate objective it additionally
//! reports observed recall and approximation ratio against brute force.
//!
//! `serve` turns the same executor into a long-running daemon (see the
//! README's Serving section); `load-smoke` is its counterpart client.
//! The daemon serves from a live [`messi::DeltaIndex`]: `POST /ingest`
//! appends series behind an epoch seam without blocking queries, and
//! `--ingest-log` makes those appends durable (replayed over the
//! snapshot on restart). `messi ingest` streams a dataset file into a
//! running daemon; `messi compact` folds a delta log back into the
//! dataset (and optional snapshot) offline and truncates it.
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, bad data, smoke
//! assertion), `2` usage error (unknown/contradictory/invalid flags).

use messi::index::serve::{self, SmokeConfig};
use messi::prelude::*;
use messi::series::io::{read_dataset, write_dataset};
use messi::{DeltaIndex, IndexServer, IngestOptions, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = run(command, rest);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}\n\nRun `messi help` for the full usage.");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str, rest: &[String]) -> Result<(), CliError> {
    if matches!(command, "help" | "--help" | "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let opts = Opts::parse(rest)?;
    match command {
        "generate" => {
            opts.expect_keys(command, &["kind", "count", "out", "len", "seed"])?;
            cmd_generate(&opts)
        }
        "build" => {
            opts.expect_keys(command, &["data", "save", "shards", "leaf-target"])?;
            cmd_build(&opts)
        }
        "info" => {
            opts.expect_keys(command, &["data", "load", "shards", "leaf-target"])?;
            cmd_info(&opts)
        }
        "query" => {
            opts.expect_keys(
                command,
                &[
                    "data",
                    "queries",
                    "num-queries",
                    "k",
                    "dtw",
                    "seed",
                    "load",
                    "kernel",
                    "shards",
                    "leaf-target",
                ],
            )?;
            cmd_query(&opts)
        }
        "range" => {
            opts.expect_keys(
                command,
                &[
                    "data",
                    "queries",
                    "num-queries",
                    "epsilon",
                    "dtw",
                    "seed",
                    "load",
                    "shards",
                    "leaf-target",
                ],
            )?;
            cmd_range(&opts)
        }
        "bench-query" => {
            opts.expect_keys(
                command,
                &[
                    "data",
                    "queries",
                    "num-queries",
                    "objective",
                    "k",
                    "epsilon",
                    "delta",
                    "schedule",
                    "parallelism",
                    "workers",
                    "dtw",
                    "breakdown",
                    "seed",
                    "load",
                    "json",
                    "kernel",
                    "shards",
                    "leaf-target",
                ],
            )?;
            cmd_bench_query(&opts)
        }
        "serve" => {
            opts.expect_keys(
                command,
                &[
                    "data",
                    "load",
                    "addr",
                    "threads",
                    "admission",
                    "query-workers",
                    "breakdown",
                    "kernel",
                    "shards",
                    "leaf-target",
                    "ingest-log",
                    "republish-after",
                ],
            )?;
            cmd_serve(&opts)
        }
        "ingest" => {
            opts.expect_keys(command, &["addr", "data", "batch", "wait-ready"])?;
            cmd_ingest(&opts)
        }
        "compact" => {
            opts.expect_keys(
                command,
                &[
                    "data",
                    "log",
                    "out",
                    "load",
                    "save",
                    "shards",
                    "leaf-target",
                ],
            )?;
            cmd_compact(&opts)
        }
        "load-smoke" => {
            opts.expect_keys(
                command,
                &[
                    "addr",
                    "data",
                    "clients",
                    "per-client",
                    "num-queries",
                    "seed",
                    "objective",
                    "k",
                    "epsilon",
                    "delta",
                    "dtw",
                    "no-retry",
                    "min-shed",
                    "max-attempts",
                    "wait-ready",
                ],
            )?;
            cmd_load_smoke(&opts)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

const USAGE: &str = "messi — in-memory data series indexing (MESSI, ICDE 2020)

USAGE:
  messi generate    --kind <random|seismic|sald> --count <N> --out <file.mds>
                    [--len <points>] [--seed <u64>]
  messi build       --data <file.mds> --save <file.msx|dir> [--shards <N>]
                    [--leaf-target <N|auto>]
  messi info        --data <file.mds> [--load <file.msx|dir>] [--shards <N>]
                    [--leaf-target <N|auto>]
  messi query       --data <file.mds> [--queries <file.mds>] [--num-queries <N>]
                    [--k <K>] [--dtw] [--seed <u64>] [--load <file.msx|dir>]
                    [--kernel <auto|simd|scalar>] [--shards <N>] [--leaf-target <N|auto>]
  messi range       --data <file.mds> --epsilon <dist> [--num-queries <N>] [--dtw] [--seed <u64>]
                    [--load <file.msx|dir>] [--shards <N>] [--leaf-target <N|auto>]
  messi bench-query --data <file.mds> [--queries <file.mds>] [--num-queries <N>]
                    [--objective <exact|knn|range|approx>] [--k <K>] [--epsilon <dist|ratio>]
                    [--delta <0..=1>] [--schedule <intra|inter>] [--parallelism <P>]
                    [--workers <Ns>] [--dtw] [--breakdown] [--seed <u64>] [--load <file.msx|dir>]
                    [--json <out.json>] [--kernel <auto|simd|scalar>] [--shards <N>]
                    [--leaf-target <N|auto>]
  messi serve       --data <file.mds> [--load <file.msx|dir>] [--addr <host:port>]
                    [--threads <N>] [--admission <N>] [--query-workers <N>] [--breakdown]
                    [--kernel <auto|simd|scalar>] [--shards <N>] [--leaf-target <N|auto>]
                    [--ingest-log <file.log>] [--republish-after <N>]
  messi ingest      --addr <host:port> --data <file.mds> [--batch <N>]
                    [--wait-ready <seconds>]
  messi compact     --data <file.mds> --log <file.log> [--out <file.mds>]
                    [--load <file.msx|dir>] [--save <file.msx|dir>] [--shards <N>]
                    [--leaf-target <N|auto>]
  messi load-smoke  --addr <host:port> --data <file.mds> [--clients <N>] [--per-client <M>]
                    [--num-queries <N>] [--objective <exact|knn|range|approx>] [--k <K>]
                    [--epsilon <dist|ratio>] [--delta <0..=1>] [--dtw] [--no-retry]
                    [--min-shed <N>] [--max-attempts <N>] [--wait-ready <seconds>] [--seed <u64>]

Generated queries come from the same family as --kind (members + noise
for real-data stand-ins). Searches are exact except `--objective approx`:
there --epsilon is the *relative* error bound (the answer is within
(1+ε) of the true nearest neighbor) and --delta the confidence in [0, 1]
(1 = deterministic guarantee, 0 = home-leaf-only ng-approximate);
observed recall and approximation ratio are reported against brute
force. bench-query answers the whole batch through the pooled query
executor: `--schedule intra` runs queries one by one, each on all
--workers search workers (the paper's protocol); `--schedule inter`
dispenses queries across --parallelism single-threaded workers for
throughput. `--json` additionally writes the aggregate as one JSON
object (the CI benchmark-trajectory artifact).

`build --save` persists the finished index as a versioned, checksummed
snapshot; `--load` on the query commands answers from the snapshot
without rebuilding (the raw dataset is still required — snapshots store
tree structure, and the loader verifies the data fingerprint).

`--shards N` partitions the collection into N contiguous ranges, builds
one independent index per range in parallel, and answers every query by
scatter-gather: shards share one atomic best-so-far, so an answer found
in one shard prunes the others, and merged answers are identical to a
single index's. With `--shards`, `--save` writes a snapshot *directory*
(one shard-I.messi per shard plus a checksummed manifest.messi) instead
of a single file; `--load` of a directory restores the sharded index,
loading the shards in parallel (the shard count then comes from the
manifest, so combining --load with --shards is rejected).

`serve` answers queries over HTTP until SIGTERM/SIGINT, then drains:
POST /query (JSON body), POST /ingest (JSON batch of series), GET
/healthz (ready only after prewarm), GET /metrics (Prometheus text).
`--admission 0` is drain mode (every query sheds with 503 +
Retry-After). `load-smoke` floods a running daemon with concurrent
clients and reports ok/shed/error counts and p50/p99 latency; it exits
non-zero on any client/server error, or when fewer than --min-shed
sheds were observed.

Ingested series are absorbed behind an epoch seam: queries keep
answering from the published index plus a small sealed overlay, and a
background republish folds the overlay into fresh index arenas after
--republish-after series (default 4096) or when the epoch outlives 5s.
With --ingest-log every accepted batch is appended to a framed,
checksummed, fsynced delta log *before* it becomes visible; restarting
with the same --ingest-log (and the matching --data/--load) replays
the log, so acknowledged series survive a crash. A torn tail (crash
mid-append) is detected, reported and dropped. `messi ingest` streams
the series of a .mds file into a running daemon in batches, retrying
shed (503) batches. `messi compact` folds a delta log into its base
collection offline: it replays the log, rewrites --data (or --out)
with the grown collection (tmp + atomic rename), optionally re-saves
the snapshot (--save), and truncates the log to a fresh header over
the new base.

`--leaf-target` sets the build-time leaf split threshold (the paper's
default is 2000); `auto` derives it from the dataset size (one leaf per
~512 series, clamped to [64, 2000]) so small collections still fan out.
Smaller leaves sharpen per-leaf pruning bounds; the derived leaf-run
metadata keeps SIMD utilization high by batching adjacent small leaves
into contiguous scans (`messi info` prints the run-length histogram,
`MESSI_NO_RUN_BATCH=1` disables the batching for ablations). Like
--shards, --leaf-target applies at build time only and does not combine
with --load.

`--kernel` forces the distance-kernel dispatch on query, bench-query and
serve: `auto` (default) uses AVX2+FMA when the CPU has it, `simd` asks
for it explicitly, `scalar` (alias `sisd`, the paper's name) forces the
bit-identical scalar twins — the Fig. 18 SIMD-vs-SISD ablation as a
flag. Answers are identical either way; only the speed changes.

Contradictory flags are rejected with exit code 2: an option a command
does not know, or one whose objective does not apply (e.g. --epsilon
with --objective exact, --delta with knn, --k with range).";

/// CLI failure, split by exit code: usage errors (bad/contradictory
/// flags) exit 2, runtime errors (I/O, bad data, failed assertions)
/// exit 1.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parsed `--key value` options.
struct Opts(Vec<(String, String)>);

/// Options that are bare flags (no value).
const FLAG_KEYS: &[&str] = &["dtw", "breakdown", "no-retry"];

impl Opts {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(usage(format!("expected --option, got `{key}`")));
            };
            if FLAG_KEYS.contains(&name) {
                out.push((name.to_string(), "true".to_string()));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| usage(format!("--{name} needs a value")))?;
            out.push((name.to_string(), value.clone()));
        }
        Ok(Self(out))
    }

    /// Rejects any option the command does not understand — the
    /// alternative is a flag that silently does nothing.
    fn expect_keys(&self, command: &str, allowed: &[&str]) -> Result<(), CliError> {
        for (key, _) in &self.0 {
            if !allowed.contains(&key.as_str()) {
                return Err(usage(format!(
                    "`messi {command}` does not accept --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )));
            }
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| usage(format!("missing --{name}")))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage(format!("invalid --{name}: `{v}`"))),
        }
    }
}

/// Parses `--kernel`, defaulting to auto-dispatch. Unknown spellings are
/// usage errors (exit 2), like any other contradictory flag.
fn kernel_from(opts: &Opts) -> Result<Kernel, CliError> {
    match opts.get("kernel") {
        None => Ok(Kernel::Auto),
        Some(v) => v.parse().map_err(usage),
    }
}

fn kind_from(name: &str) -> Result<DatasetKind, CliError> {
    match name {
        "random" | "random-walk" => Ok(DatasetKind::RandomWalk),
        "seismic" => Ok(DatasetKind::Seismic),
        "sald" => Ok(DatasetKind::Sald),
        other => Err(usage(format!(
            "unknown kind `{other}` (random|seismic|sald)"
        ))),
    }
}

fn load(opts: &Opts) -> Result<Arc<Dataset>, CliError> {
    let path = PathBuf::from(opts.required("data")?);
    read_dataset(&path)
        .map(Arc::new)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", path.display())))
}

fn cmd_generate(opts: &Opts) -> Result<(), CliError> {
    let kind = kind_from(opts.required("kind")?)?;
    let count: usize = opts
        .required("count")?
        .parse()
        .map_err(|_| usage("invalid --count"))?;
    let out = PathBuf::from(opts.required("out")?);
    let len: usize = opts.parsed("len", kind.paper_series_len())?;
    let seed: u64 = opts.parsed("seed", 42u64)?;
    let generator = kind.generator_with_len(seed, len);
    let t = std::time::Instant::now();
    let ds = messi::series::gen::generate_dataset(generator.as_ref(), count);
    write_dataset(&ds, &out).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "wrote {} series × {} points ({} MB) to {} in {:.2?}",
        ds.len(),
        ds.series_len(),
        ds.raw_bytes() / (1 << 20),
        out.display(),
        t.elapsed()
    );
    Ok(())
}

/// Parses and validates `--shards` (default 1 — a single index).
fn shards_from(opts: &Opts, data: &Arc<Dataset>) -> Result<usize, CliError> {
    let shards: usize = opts.parsed("shards", 1usize)?;
    if shards == 0 {
        return Err(usage("--shards must be positive"));
    }
    if shards > data.len() {
        return Err(usage(format!(
            "--shards {shards} exceeds the collection size ({} series)",
            data.len()
        )));
    }
    Ok(shards)
}

/// Parses `--leaf-target` (a split threshold, or `auto` to derive one
/// from the dataset size) into the build configuration. Absent, the
/// paper default (2000) applies.
fn index_config_from(opts: &Opts, data: &Arc<Dataset>) -> Result<IndexConfig, CliError> {
    let mut config = IndexConfig::default();
    match opts.get("leaf-target") {
        None => {}
        Some("auto") => config.leaf_capacity = messi::index::auto_leaf_capacity(data.len()),
        Some(v) => {
            config.leaf_capacity = v.parse().ok().filter(|&c: &usize| c > 0).ok_or_else(|| {
                usage(format!(
                    "invalid --leaf-target: `{v}` (expected a positive number or `auto`)"
                ))
            })?;
        }
    }
    Ok(config)
}

/// Builds the (possibly sharded) index or loads it from a `--load`
/// snapshot — a single `.msx` file becomes the one-shard case, a
/// snapshot directory restores the recorded partition. Build stats are
/// only available when the index was actually built.
fn obtain_index(
    opts: &Opts,
    data: &Arc<Dataset>,
) -> Result<(ShardedIndex, Option<BuildStats>), CliError> {
    if let Some(path) = opts.get("load") {
        if opts.get("shards").is_some() {
            return Err(usage(
                "--shards does not combine with --load \
                 (a snapshot's manifest fixes its shard count)",
            ));
        }
        if opts.get("leaf-target").is_some() {
            return Err(usage(
                "--leaf-target does not combine with --load \
                 (a snapshot fixes its tree shape at build time)",
            ));
        }
        let t = std::time::Instant::now();
        let path_buf = PathBuf::from(path);
        let index = if path_buf.is_dir() {
            messi::index::shard::load_sharded(&path_buf, Arc::clone(data))
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?
        } else {
            ShardedIndex::from_single(
                messi::index::persist::load_index(&path_buf, Arc::clone(data))
                    .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?,
            )
        };
        println!(
            "index loaded from {path} ({} shard{}) in {:.2?}",
            index.num_shards(),
            if index.num_shards() == 1 { "" } else { "s" },
            t.elapsed()
        );
        Ok((index, None))
    } else {
        let shards = shards_from(opts, data)?;
        let config = index_config_from(opts, data)?;
        let (index, stats) = ShardedIndex::build(Arc::clone(data), shards, &config);
        Ok((index, Some(stats)))
    }
}

fn cmd_build(opts: &Opts) -> Result<(), CliError> {
    let data = load(opts)?;
    let out = PathBuf::from(opts.required("save")?);
    if let Some((pos, idx)) = data.find_non_finite() {
        return Err(CliError::Runtime(format!(
            "series {pos} has a non-finite value at point {idx}; \
             similarity search over NaN/∞ is undefined"
        )));
    }
    let sharded = opts.get("shards").is_some();
    let shards = shards_from(opts, &data)?;
    let config = index_config_from(opts, &data)?;
    let (index, stats) = ShardedIndex::build(Arc::clone(&data), shards, &config);
    println!(
        "index: {} series built in {:.2?} across {} shard{} (summaries {:.2?} + tree {:.2?})",
        stats.num_series,
        stats.total_time,
        shards,
        if shards == 1 { "" } else { "s" },
        stats.summarize_time,
        stats.tree_time
    );
    let t = std::time::Instant::now();
    if sharded {
        // --shards selects the directory snapshot even at N = 1, so a
        // sharded deployment's layout does not flip on the shard count.
        messi::index::shard::save_sharded(&index, &out)
            .map_err(|e| format!("{}: {e}", out.display()))?;
        let bytes: u64 = std::fs::read_dir(&out)
            .map(|entries| {
                entries
                    .flatten()
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0);
        println!(
            "snapshot: {:.1} MB across {} shard files written to {}/ in {:.2?}",
            bytes as f64 / (1 << 20) as f64,
            index.num_shards(),
            out.display(),
            t.elapsed()
        );
    } else {
        messi::index::persist::save_index(index.shard(0), &out)
            .map_err(|e| format!("{}: {e}", out.display()))?;
        let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        println!(
            "snapshot: {:.1} MB written to {} in {:.2?}",
            bytes as f64 / (1 << 20) as f64,
            out.display(),
            t.elapsed()
        );
    }
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), CliError> {
    let data = load(opts)?;
    println!(
        "dataset: {} series × {} points, {} MB raw",
        data.len(),
        data.series_len(),
        data.raw_bytes() / (1 << 20)
    );
    if let Some((pos, idx)) = data.find_non_finite() {
        return Err(CliError::Runtime(format!(
            "series {pos} has a non-finite value at point {idx}; \
             similarity search over NaN/∞ is undefined"
        )));
    }
    let (index, stats) = obtain_index(opts, &data)?;
    if let Some(stats) = stats {
        println!(
            "index:   built in {:.2?} (summaries {:.2?} + tree {:.2?})",
            stats.total_time, stats.summarize_time, stats.tree_time
        );
    }
    let root_subtrees: usize = index.shards().iter().map(|s| s.touched_keys().len()).sum();
    println!(
        "shape:   {} shard{}, {} leaves across {} root subtrees, height ≤ {}",
        index.num_shards(),
        if index.num_shards() == 1 { "" } else { "s" },
        index.num_leaves(),
        root_subtrees,
        index.max_height()
    );
    if index.num_shards() > 1 {
        for (i, shard) in index.shards().iter().enumerate() {
            println!(
                "         shard {i}: positions {}..{} ({} series, {} leaves)",
                index.shard_offset(i),
                index.shard_offset(i) + shard.num_series() as u64,
                shard.num_series(),
                shard.num_leaves()
            );
        }
    }
    println!(
        "         leaf fill factor {:.1}% (capacity {}), {} entries",
        100.0 * index.leaf_fill_factor(),
        index.shard(0).config().leaf_capacity,
        index.num_entries()
    );
    let shapes: Vec<(usize, usize)> = index.shards().iter().flat_map(|s| s.run_shapes()).collect();
    let runs = shapes.len().max(1);
    let (run_leaves, run_entries) = shapes
        .iter()
        .fold((0usize, 0usize), |(l, e), s| (l + s.0, e + s.1));
    let mut hist = [0usize; 4];
    for s in &shapes {
        hist[match s.0 {
            0..=1 => 0,
            2..=4 => 1,
            5..=8 => 2,
            _ => 3,
        }] += 1;
    }
    println!(
        "         leaf runs {runs} ({:.2} leaves/run, {:.1} entries/run); \
         leaves-per-run histogram: 1:{} 2-4:{} 5-8:{} 9+:{}",
        run_leaves as f64 / runs as f64,
        run_entries as f64 / runs as f64,
        hist[0],
        hist[1],
        hist[2],
        hist[3],
    );
    println!(
        "storage: node arenas {:.2} MB + leaf pools {:.2} MB (flat, 2 allocations/subtree)",
        index.node_storage_bytes() as f64 / (1 << 20) as f64,
        index.entry_storage_bytes() as f64 / (1 << 20) as f64
    );
    Ok(())
}

fn queries_for_cli(opts: &Opts, data: &Arc<Dataset>) -> Result<Dataset, CliError> {
    if let Some(qpath) = opts.get("queries") {
        let qs = read_dataset(&PathBuf::from(qpath))
            .map_err(|e| CliError::Runtime(format!("{qpath}: {e}")))?;
        if qs.series_len() != data.series_len() {
            return Err(CliError::Runtime(format!(
                "query length {} ≠ dataset length {}",
                qs.series_len(),
                data.series_len()
            )));
        }
        return Ok(qs);
    }
    let n: usize = opts.parsed("num-queries", 10usize)?;
    if n == 0 {
        return Err(usage("--num-queries must be positive"));
    }
    let seed: u64 = opts.parsed("seed", 42u64)?;
    Ok(messi::series::gen::queries::noisy_queries_from_dataset(
        data, n, 0.1, seed,
    ))
}

fn cmd_query(opts: &Opts) -> Result<(), CliError> {
    let data = load(opts)?;
    let queries = queries_for_cli(opts, &data)?;
    let k: usize = opts.parsed("k", 1usize)?;
    let use_dtw = opts.get("dtw").is_some();
    let (index, build) = obtain_index(opts, &data)?;
    if let Some(build) = &build {
        println!("index built in {:.2?}", build.total_time);
    }
    println!("answering {} queries…", queries.len());
    let config = QueryConfig {
        kernel: kernel_from(opts)?,
        ..QueryConfig::default()
    };
    let mut spec = if k > 1 {
        QuerySpec::knn(k)
    } else {
        QuerySpec::exact()
    };
    if use_dtw {
        spec = spec.with_dtw(DtwParams::paper_default(data.series_len()));
    }
    let exec = index.executor();
    let tag = if use_dtw { "dtw " } else { "" };
    for (qi, q) in queries.iter().enumerate() {
        let (answers, stats) = exec.run_one(q, &spec, &config);
        if k > 1 {
            let list: Vec<String> = answers
                .iter()
                .map(|a| format!("#{}@{:.3}", a.pos, a.distance()))
                .collect();
            println!(
                "query {qi}: {tag}top-{k} [{}] in {:.2?}",
                list.join(", "),
                stats.total_time
            );
        } else {
            let ans = &answers[0];
            println!(
                "query {qi}: {tag}nn=series#{} dist={:.4} in {:.2?} ({} real distances, {:.2}% pruned)",
                ans.pos,
                ans.distance(),
                stats.total_time,
                stats.real_distance_calcs,
                100.0 * (1.0 - stats.real_distance_calcs as f64 / data.len() as f64)
            );
        }
    }
    Ok(())
}

fn cmd_range(opts: &Opts) -> Result<(), CliError> {
    let data = load(opts)?;
    let epsilon: f32 = opts
        .required("epsilon")?
        .parse()
        .map_err(|_| usage("invalid --epsilon"))?;
    if epsilon.is_nan() || epsilon < 0.0 {
        return Err(usage("--epsilon must be non-negative"));
    }
    let use_dtw = opts.get("dtw").is_some();
    let queries = queries_for_cli(opts, &data)?;
    let (index, _) = obtain_index(opts, &data)?;
    let config = QueryConfig::default();
    // User supplies a distance; the search APIs want it squared.
    let epsilon_sq = epsilon * epsilon;
    let mut spec = QuerySpec::range(epsilon_sq);
    if use_dtw {
        spec = spec.with_dtw(DtwParams::paper_default(data.series_len()));
    }
    let exec = index.executor();
    for (qi, q) in queries.iter().enumerate() {
        let (matches, stats) = exec.run_one(q, &spec, &config);
        let preview: Vec<String> = matches
            .iter()
            .take(8)
            .map(|a| format!("#{}@{:.3}", a.pos, a.distance()))
            .collect();
        println!(
            "query {qi}: {} series within {}ε={epsilon} in {:.2?} [{}{}]",
            matches.len(),
            if use_dtw { "DTW " } else { "" },
            stats.total_time,
            preview.join(", "),
            if matches.len() > 8 { ", …" } else { "" }
        );
    }
    Ok(())
}

/// Rejects objective-dependent flags that the selected objective does
/// not use — they would otherwise be accepted and silently ignored.
fn validate_objective_flags(opts: &Opts, objective: &str) -> Result<(), CliError> {
    let reject = |flag: &str, why: &str| -> Result<(), CliError> {
        if opts.get(flag).is_some() {
            Err(usage(format!(
                "--{flag} does not apply to --objective {objective} ({why})"
            )))
        } else {
            Ok(())
        }
    };
    match objective {
        "exact" => {
            reject("k", "--k selects the knn objective's answer count")?;
            reject(
                "epsilon",
                "--epsilon is the range radius or approx error bound",
            )?;
            reject("delta", "--delta is the approx confidence")?;
        }
        "knn" => {
            reject(
                "epsilon",
                "--epsilon is the range radius or approx error bound",
            )?;
            reject("delta", "--delta is the approx confidence")?;
        }
        "range" => {
            reject("k", "--k selects the knn objective's answer count")?;
            reject("delta", "--delta is the approx confidence")?;
        }
        "approx" => {
            reject("k", "--k selects the knn objective's answer count")?;
        }
        other => {
            return Err(usage(format!(
                "unknown objective `{other}` (exact|knn|range|approx)"
            )))
        }
    }
    Ok(())
}

/// Parses `--objective` and its dependent flags into an [`Objective`],
/// rejecting contradictory combinations.
fn objective_from(opts: &Opts) -> Result<Objective, CliError> {
    let name = opts.get("objective").unwrap_or("exact");
    validate_objective_flags(opts, name)?;
    match name {
        "exact" => Ok(Objective::Exact),
        "knn" => {
            let k: usize = opts.parsed("k", 10usize)?;
            if k == 0 {
                return Err(usage("--k must be positive"));
            }
            Ok(Objective::Knn { k })
        }
        "range" => {
            let epsilon: f32 = opts
                .required("epsilon")?
                .parse()
                .map_err(|_| usage("invalid --epsilon"))?;
            if epsilon.is_nan() || epsilon < 0.0 {
                return Err(usage("--epsilon must be non-negative"));
            }
            Ok(Objective::Range {
                epsilon_sq: epsilon * epsilon,
            })
        }
        "approx" => {
            // For the approximate objective, --epsilon is the *relative*
            // error bound (a ratio, not a distance) and --delta the
            // confidence; the defaults give the deterministic ε-approximate
            // mode with a 5% error bound.
            let epsilon: f32 = opts.parsed("epsilon", 0.05f32)?;
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(usage("--epsilon must be a finite non-negative ratio"));
            }
            let delta: f32 = opts.parsed("delta", 1.0f32)?;
            if !(0.0..=1.0).contains(&delta) {
                return Err(usage("--delta must be within [0, 1]"));
            }
            Ok(Objective::Approx { epsilon, delta })
        }
        _ => unreachable!("validate_objective_flags rejected unknown objectives"),
    }
}

fn cmd_bench_query(opts: &Opts) -> Result<(), CliError> {
    let data = load(opts)?;
    let queries = queries_for_cli(opts, &data)?;
    if queries.is_empty() {
        return Err(CliError::Runtime(
            "bench-query needs at least one query".into(),
        ));
    }

    // ---- What to run: one cell of the Objective × Metric matrix ----
    let objective = objective_from(opts)?;
    let metric = if opts.get("dtw").is_some() {
        MetricSpec::Dtw(DtwParams::paper_default(data.series_len()))
    } else {
        MetricSpec::Euclidean
    };
    let spec = QuerySpec { objective, metric };

    // ---- How to run it: schedule and worker configuration ----
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let schedule_name = opts.get("schedule").unwrap_or("intra");
    let schedule = match schedule_name {
        "intra" => {
            if opts.get("parallelism").is_some() {
                return Err(usage(
                    "--parallelism only applies to --schedule inter \
                     (intra parallelizes inside each query via --workers)",
                ));
            }
            Schedule::IntraQuery
        }
        "inter" => {
            if opts.get("workers").is_some() {
                return Err(usage(
                    "--workers only applies to --schedule intra \
                     (inter runs each query single-threaded via --parallelism)",
                ));
            }
            let parallelism: usize = opts.parsed("parallelism", cores)?;
            if parallelism == 0 {
                return Err(usage("--parallelism must be positive"));
            }
            Schedule::InterQuery { parallelism }
        }
        other => return Err(usage(format!("unknown schedule `{other}` (intra|inter)"))),
    };
    let config = QueryConfig {
        num_workers: opts.parsed("workers", QueryConfig::default().num_workers)?,
        collect_breakdown: opts.get("breakdown").is_some(),
        kernel: kernel_from(opts)?,
        ..QueryConfig::default()
    };

    let (index, build) = obtain_index(opts, &data)?;
    println!(
        "bench-query: {} queries · {} · {} · {} · {} shard{}",
        queries.len(),
        describe_objective(&objective),
        describe_metric(&metric),
        describe_schedule(&schedule, config.num_workers),
        index.num_shards(),
        if index.num_shards() == 1 { "" } else { "s" },
    );
    match &build {
        Some(build) => println!(
            "index: {} series built in {:.2?}",
            data.len(),
            build.total_time
        ),
        None => println!("index: {} series (from snapshot)", data.len()),
    }

    // One executor serves the whole batch from warm pooled contexts,
    // sized to the schedule's concurrency (intra uses a single context);
    // the prewarm keeps first-query allocations out of the measured
    // window without running more unmeasured queries than needed.
    let pool_size = match schedule {
        Schedule::IntraQuery => 1,
        Schedule::InterQuery { parallelism } => parallelism,
    };
    let exec = ShardedExecutor::with_capacity(&index, pool_size);
    exec.prewarm(queries.series(0), &spec, &config);
    let t = std::time::Instant::now();
    let (answers, agg) = exec.run_batch(&queries, &spec, schedule, &config);
    let wall = t.elapsed();

    let n = queries.len() as f64;
    let total_answers: usize = answers.iter().map(Vec::len).sum();
    println!(
        "batch: answered in {:.2?} → {:.1} queries/s (mean {:.3?}/query), {} answers total",
        wall,
        n / wall.as_secs_f64(),
        agg.mean_time(),
        total_answers
    );
    println!(
        "latency: p50 {} µs · p99 {} µs · max {} µs",
        agg.latency_percentile_us(50.0).unwrap_or(0),
        agg.latency_percentile_us(99.0).unwrap_or(0),
        agg.latency_percentile_us(100.0).unwrap_or(0),
    );
    println!(
        "pruning: {:.1} lb calcs/query · {:.1} real calcs/query · {:.1} bsf updates/query",
        agg.mean_lb_calcs(),
        agg.mean_real_calcs(),
        agg.bsf_updates as f64 / n
    );
    if let Objective::Approx { epsilon, delta } = objective {
        // Quality report (outside the timed window): brute-force the true
        // 1-NN per query and compare. DTW brute force is intentionally
        // skipped — it would dwarf the measured batch.
        match metric {
            MetricSpec::Euclidean => {
                let mut within_bound = 0usize;
                let mut exact_hits = 0usize;
                let mut ratio_sum = 0.0f64;
                let mut ratio_max = 0.0f64;
                let factor = (1.0 + epsilon as f64) * (1.0 + epsilon as f64);
                for (qi, q) in queries.iter().enumerate() {
                    let (_, true_nn) = data.nearest_neighbor_brute_force(q);
                    let got = answers[qi][0].dist_sq as f64;
                    let ratio = if true_nn > 0.0 {
                        (got / true_nn as f64).sqrt()
                    } else {
                        1.0
                    };
                    ratio_sum += ratio;
                    ratio_max = ratio_max.max(ratio);
                    if got <= true_nn as f64 * (1.0 + 1e-3) {
                        exact_hits += 1;
                    }
                    if got <= factor * true_nn as f64 * (1.0 + 1e-3) {
                        within_bound += 1;
                    }
                }
                println!(
                    "quality: recall@1 {:.1}% · within (1+ε) {:.1}% (δ target {:.1}%) · \
                     approx ratio mean {:.4} / max {:.4}",
                    100.0 * exact_hits as f64 / n,
                    100.0 * within_bound as f64 / n,
                    100.0 * delta as f64,
                    ratio_sum / n,
                    ratio_max
                );
            }
            MetricSpec::Dtw(_) => {
                println!("quality: (skipped — DTW brute force would dwarf the batch)");
            }
        }
        println!(
            "approx:  {} / {} queries stopped on the δ budget · {:.1} ε-inflation prunes/query",
            agg.budget_stops,
            agg.queries,
            agg.approx_inflation_prunes as f64 / n
        );
    }
    if let Some(b) = agg.mean_breakdown() {
        println!(
            "breakdown (mean µs/query): init {:.0} · tree pass {:.0} · pq insert {:.0} · \
             pq remove {:.0} · dist calc {:.0}",
            b.init_ns as f64 / 1e3,
            b.tree_pass_ns as f64 / 1e3,
            b.pq_insert_ns as f64 / 1e3,
            b.pq_remove_ns as f64 / 1e3,
            b.dist_calc_ns as f64 / 1e3,
        );
    }

    // ---- Machine-readable aggregate for the CI benchmark trajectory ----
    if let Some(json_path) = opts.get("json") {
        let breakdown = agg.mean_breakdown().map(|b| {
            format!(
                ",\"phase_mean_ns\":{{\"init\":{},\"tree_pass\":{},\"pq_insert\":{},\
                 \"pq_remove\":{},\"dist_calc\":{}}}",
                b.init_ns, b.tree_pass_ns, b.pq_insert_ns, b.pq_remove_ns, b.dist_calc_ns
            )
        });
        let build_field = build
            .as_ref()
            .map(|b| format!(",\"build_us\":{}", b.total_time.as_micros()))
            .unwrap_or_default();
        let line = format!(
            "{{\"objective\":\"{}\",\"metric\":\"{}\",\"schedule\":\"{}\",\"kernel\":\"{}\",\
             \"shards\":{},\"available_cores\":{},\"run_batch\":{},\"queries\":{},\
             \"wall_us\":{},\"qps\":{:.3},\"mean_query_us\":{},\
             \"p50_us\":{},\"p99_us\":{},\"max_us\":{},\"lb_calcs_per_query\":{:.3},\
             \"real_calcs_per_query\":{:.3},\"bsf_updates\":{},\"budget_stops\":{},\
             \"total_answers\":{}{}{}}}",
            match objective {
                Objective::Exact => "exact",
                Objective::Knn { .. } => "knn",
                Objective::Range { .. } => "range",
                Objective::Approx { .. } => "approx",
            },
            if matches!(metric, MetricSpec::Euclidean) {
                "ed"
            } else {
                "dtw"
            },
            schedule_name,
            match config.kernel {
                Kernel::Auto => "auto",
                Kernel::Simd => "simd",
                Kernel::Scalar => "scalar",
            },
            index.num_shards(),
            cores,
            config.run_batching(),
            agg.queries,
            wall.as_micros(),
            n / wall.as_secs_f64(),
            agg.mean_time().as_micros(),
            agg.latency_percentile_us(50.0).unwrap_or(0),
            agg.latency_percentile_us(99.0).unwrap_or(0),
            agg.latency_percentile_us(100.0).unwrap_or(0),
            agg.mean_lb_calcs(),
            agg.mean_real_calcs(),
            agg.bsf_updates,
            agg.budget_stops,
            total_answers,
            build_field,
            breakdown.unwrap_or_default(),
        );
        std::fs::write(json_path, format!("{line}\n")).map_err(|e| format!("{json_path}: {e}"))?;
        println!("json: aggregate written to {json_path}");
    }
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7700").to_string();
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        threads: opts.parsed("threads", defaults.threads)?,
        admission: opts.parsed("admission", defaults.admission)?,
        query_workers: opts.parsed("query-workers", defaults.query_workers)?,
        collect_breakdown: opts.get("breakdown").is_some(),
        kernel: kernel_from(opts)?,
    };
    if config.threads == 0 {
        return Err(usage("--threads must be positive"));
    }
    if config.query_workers == 0 {
        return Err(usage("--query-workers must be positive"));
    }

    // Install the SIGTERM/SIGINT handler before any long-running work so
    // an early signal still drains cleanly.
    let shutdown = serve::shutdown_flag();

    let data = load(opts)?;
    if let Some((pos, idx)) = data.find_non_finite() {
        return Err(CliError::Runtime(format!(
            "series {pos} has a non-finite value at point {idx}; refusing to serve"
        )));
    }
    let (index, build) = obtain_index(opts, &data)?;
    if let Some(build) = build {
        println!(
            "index: {} series built in {:.2?}",
            data.len(),
            build.total_time
        );
    }
    let num_shards = index.num_shards();
    let live = live_index_from(opts, index)?;
    let server = IndexServer::bind(addr.as_str(), config.clone())
        .map_err(|e| CliError::Runtime(format!("bind {addr}: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| CliError::Runtime(format!("local_addr: {e}")))?;
    println!(
        "serve: listening on {bound} (threads={} admission={} query-workers={} shards={} series={}{})",
        config.threads,
        config.admission,
        config.query_workers,
        num_shards,
        live.num_series(),
        if config.admission == 0 {
            ", DRAIN MODE"
        } else {
            ""
        },
    );
    // The boot and stats lines must reach a supervising harness promptly
    // even when stdout is a pipe (block-buffered).
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let summary = server
        .serve(&live, shutdown)
        .map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
    println!(
        "serve: drained cleanly — served={} shed={} failures={} \
         lb_calcs={} real_calcs={} query_seconds={:.3}",
        summary.served,
        summary.shed,
        summary.failures,
        summary.aggregate.lb_distance_calcs,
        summary.aggregate.real_distance_calcs,
        summary.aggregate.total_time.as_secs_f64(),
    );
    let _ = std::io::stdout().flush();
    Ok(())
}

/// Wraps the built/loaded index as the daemon's live [`DeltaIndex`],
/// attaching (and replaying) the `--ingest-log` when one is given.
fn live_index_from(opts: &Opts, index: ShardedIndex) -> Result<DeltaIndex, CliError> {
    let defaults = IngestOptions::default();
    let options = IngestOptions {
        republish_after: opts.parsed("republish-after", defaults.republish_after)?,
        ..defaults
    };
    match opts.get("ingest-log") {
        None => Ok(DeltaIndex::new(index, options)),
        Some(path) => {
            let (live, report) = DeltaIndex::with_log(index, options, std::path::Path::new(path))
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            println!(
                "ingest-log: {path} replayed {} batches / {} series{}",
                report.batches,
                report.series,
                if report.torn {
                    format!(" (torn tail: dropped {} bytes)", report.dropped_bytes)
                } else {
                    String::new()
                }
            );
            Ok(live)
        }
    }
}

/// One `/ingest` request body: `{"series":[[…],[…]]}` for the half-open
/// series range `start..end`. `{:?}` prints the shortest decimal that
/// round-trips the f32, so the daemon reconstructs the bytes exactly.
fn ingest_body(data: &Dataset, start: usize, end: usize) -> Vec<u8> {
    let rows: Vec<String> = (start..end)
        .map(|pos| {
            let vals: Vec<String> = data.series(pos).iter().map(|x| format!("{x:?}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    format!("{{\"series\":[{}]}}", rows.join(",")).into_bytes()
}

fn cmd_ingest(opts: &Opts) -> Result<(), CliError> {
    let addr = opts.required("addr")?.to_string();
    let data = load(opts)?;
    if let Some((pos, idx)) = data.find_non_finite() {
        return Err(CliError::Runtime(format!(
            "series {pos} has a non-finite value at point {idx}; refusing to ingest"
        )));
    }
    let batch: usize = opts.parsed("batch", 64usize)?;
    if batch == 0 {
        return Err(usage("--batch must be positive"));
    }
    let wait_ready_secs: u64 = opts.parsed("wait-ready", 0u64)?;
    if wait_ready_secs > 0 {
        let timeout = std::time::Duration::from_secs(wait_ready_secs);
        if !serve::wait_ready(&addr, timeout) {
            return Err(CliError::Runtime(format!(
                "daemon at {addr} not ready within {wait_ready_secs}s"
            )));
        }
    }

    let connect =
        || serve::Client::connect(&addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")));
    let mut client = connect()?;
    let t = std::time::Instant::now();
    let mut last_body = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let end = (start + batch).min(data.len());
        let body = ingest_body(&data, start, end);
        let mut attempts = 0u32;
        loop {
            let resp = client
                .request("POST", "/ingest", &body)
                .map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
            let reconnect = resp.close;
            match resp.status {
                200 => {
                    last_body = resp.body;
                    if reconnect {
                        client = connect()?;
                    }
                    break;
                }
                503 => {
                    // Not-ready / saturated: honour the Retry-After hint
                    // (scaled down like load-smoke's backoff) and retry.
                    attempts += 1;
                    if attempts > 50 {
                        return Err(CliError::Runtime(format!(
                            "batch at series {start} still shed after {attempts} attempts"
                        )));
                    }
                    let ms = resp
                        .retry_after
                        .map(|s| (s.max(1) * 20).min(250))
                        .unwrap_or(20);
                    if reconnect {
                        client = connect()?;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                other => {
                    return Err(CliError::Runtime(format!(
                        "/ingest returned {other} for the batch at series {start}: {}",
                        String::from_utf8_lossy(&resp.body)
                    )));
                }
            }
        }
        start = end;
    }

    // The final report carries the daemon's running totals.
    let report = std::str::from_utf8(&last_body)
        .ok()
        .and_then(|s| serve::json::Json::parse(s).ok());
    let field = |name: &str| {
        report
            .as_ref()
            .and_then(|doc| doc.get(name))
            .and_then(serve::json::Json::as_f64)
    };
    println!(
        "ingest: {} series in {} batches to {addr} in {:.2?} (daemon now at {} series, epoch {})",
        data.len(),
        data.len().div_ceil(batch),
        t.elapsed(),
        field("total_series").map_or("?".into(), |v| format!("{v}")),
        field("epoch").map_or("?".into(), |v| format!("{v}")),
    );
    Ok(())
}

fn cmd_compact(opts: &Opts) -> Result<(), CliError> {
    let data_path = PathBuf::from(opts.required("data")?);
    let log_path = PathBuf::from(opts.required("log")?);
    let data = load(opts)?;
    let base_len = data.len();
    let (index, _) = obtain_index(opts, &data)?;
    let (live, report) = DeltaIndex::with_log(index, IngestOptions::default(), &log_path)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", log_path.display())))?;
    println!(
        "compact: replayed {} batches / {} series from {}{}",
        report.batches,
        report.series,
        log_path.display(),
        if report.torn {
            format!(" (torn tail: dropped {} bytes)", report.dropped_bytes)
        } else {
            String::new()
        }
    );
    live.republish()
        .map_err(|e| CliError::Runtime(format!("republish: {e}")))?;

    // Persist the grown collection *before* truncating the log: a crash
    // in between leaves a stale log header that fails loudly on the next
    // open (fingerprint mismatch) instead of silently losing series.
    let out = opts.get("out").map(PathBuf::from).unwrap_or(data_path);
    let index = live.index();
    let tmp = out.with_extension("mds.tmp");
    write_dataset(index.dataset(), &tmp).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &out).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "compact: {} series ({} from the log) written to {}",
        index.dataset().len(),
        index.dataset().len() - base_len,
        out.display()
    );

    if let Some(save) = opts.get("save") {
        let save_path = PathBuf::from(save);
        let t = std::time::Instant::now();
        if index.num_shards() > 1 || save_path.is_dir() {
            messi::index::shard::save_sharded(&index, &save_path)
                .map_err(|e| format!("{save}: {e}"))?;
        } else {
            messi::index::persist::save_index(index.shard(0), &save_path)
                .map_err(|e| format!("{save}: {e}"))?;
        }
        println!(
            "compact: snapshot re-saved to {save} in {:.2?}",
            t.elapsed()
        );
    }

    let new_base = live
        .checkpoint_log()
        .map_err(|e| CliError::Runtime(format!("truncate {}: {e}", log_path.display())))?;
    println!(
        "compact: {} truncated to a fresh header over {} series",
        log_path.display(),
        new_base
    );
    Ok(())
}

fn cmd_load_smoke(opts: &Opts) -> Result<(), CliError> {
    let addr = opts.required("addr")?.to_string();
    let data = load(opts)?;
    let n: usize = opts.parsed("num-queries", 10usize)?;
    if n == 0 {
        return Err(usage("--num-queries must be positive"));
    }
    let seed: u64 = opts.parsed("seed", 42u64)?;
    let objective = opts.get("objective").unwrap_or("exact");
    validate_objective_flags(opts, objective)?;

    // Build the JSON query bodies the daemon's /query endpoint expects.
    let queries = messi::series::gen::queries::noisy_queries_from_dataset(&data, n, 0.1, seed);
    let mut fields: Vec<String> = vec![format!("\"objective\":\"{objective}\"")];
    match objective {
        "exact" => {}
        "knn" => {
            let k: usize = opts.parsed("k", 10usize)?;
            if k == 0 {
                return Err(usage("--k must be positive"));
            }
            fields.push(format!("\"k\":{k}"));
        }
        "range" => {
            let epsilon: f32 = opts
                .required("epsilon")?
                .parse()
                .map_err(|_| usage("invalid --epsilon"))?;
            if epsilon.is_nan() || epsilon < 0.0 {
                return Err(usage("--epsilon must be non-negative"));
            }
            fields.push(format!("\"epsilon\":{epsilon}"));
        }
        "approx" => {
            let epsilon: f32 = opts.parsed("epsilon", 0.05f32)?;
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(usage("--epsilon must be a finite non-negative ratio"));
            }
            let delta: f32 = opts.parsed("delta", 1.0f32)?;
            if !(0.0..=1.0).contains(&delta) {
                return Err(usage("--delta must be within [0, 1]"));
            }
            fields.push(format!("\"epsilon\":{epsilon}"));
            fields.push(format!("\"delta\":{delta}"));
        }
        _ => unreachable!("validate_objective_flags rejected unknown objectives"),
    }
    if opts.get("dtw").is_some() {
        fields.push("\"metric\":\"dtw\"".to_string());
    }
    let bodies: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            let series: Vec<String> = q.iter().map(|x| format!("{x}")).collect();
            format!("{{{},\"series\":[{}]}}", fields.join(","), series.join(",")).into_bytes()
        })
        .collect();

    let smoke = SmokeConfig {
        clients: opts.parsed("clients", 4usize)?,
        per_client: opts.parsed("per-client", 25usize)?,
        retry: opts.get("no-retry").is_none(),
        max_attempts: opts.parsed("max-attempts", 50usize)?,
    };
    if smoke.clients == 0 || smoke.per_client == 0 {
        return Err(usage("--clients and --per-client must be positive"));
    }
    let min_shed: u64 = opts.parsed("min-shed", 0u64)?;
    let wait_ready_secs: u64 = opts.parsed("wait-ready", 0u64)?;

    if wait_ready_secs > 0 {
        let timeout = std::time::Duration::from_secs(wait_ready_secs);
        if !serve::wait_ready(&addr, timeout) {
            return Err(CliError::Runtime(format!(
                "daemon at {addr} not ready within {wait_ready_secs}s"
            )));
        }
        println!("load-smoke: {addr} ready");
    }

    println!(
        "load-smoke: {} clients × {} queries ({} bodies, objective={objective}{}) against {addr}",
        smoke.clients,
        smoke.per_client,
        bodies.len(),
        if opts.get("dtw").is_some() {
            ", dtw"
        } else {
            ""
        },
    );
    let report = serve::run_load_smoke(&addr, &bodies, &smoke);
    println!("{}", report.render());

    // The smoke contract: every query accounted for, no errors, and (when
    // demanded) proof that the admission gate actually shed load.
    let expected = (smoke.clients * smoke.per_client) as u64;
    if report.client_errors > 0 || report.server_errors > 0 {
        return Err(CliError::Runtime(format!(
            "{} client errors, {} server errors (expected none)",
            report.client_errors, report.server_errors
        )));
    }
    if report.shed < min_shed {
        return Err(CliError::Runtime(format!(
            "observed {} sheds, required at least {min_shed}",
            report.shed
        )));
    }
    let landed_or_shed = if smoke.retry {
        report.ok
    } else {
        report.ok + report.shed
    };
    if landed_or_shed < expected {
        return Err(CliError::Runtime(format!(
            "only {landed_or_shed} of {expected} queries accounted for \
             ({} transport errors)",
            report.transport_errors
        )));
    }
    Ok(())
}

fn describe_objective(objective: &Objective) -> String {
    match objective {
        Objective::Exact => "objective=exact (1-NN)".into(),
        Objective::Knn { k } => format!("objective=knn (k={k})"),
        Objective::Range { epsilon_sq } => {
            format!("objective=range (ε={})", epsilon_sq.sqrt())
        }
        Objective::Approx { epsilon, delta } => {
            format!("objective=approx (ε={epsilon}, δ={delta})")
        }
    }
}

fn describe_metric(metric: &MetricSpec) -> String {
    match metric {
        MetricSpec::Euclidean => "metric=euclidean".into(),
        MetricSpec::Dtw(p) => format!("metric=dtw (window={})", p.window),
    }
}

fn describe_schedule(schedule: &Schedule, workers: usize) -> String {
    match schedule {
        Schedule::IntraQuery => format!("schedule=intra ({workers} workers/query)"),
        Schedule::InterQuery { parallelism } => {
            format!("schedule=inter ({parallelism} single-threaded query workers)")
        }
    }
}
