//! # MESSI — In-Memory Data Series Indexing
//!
//! A complete Rust implementation of **MESSI** (Peng, Fatourou, Palpanas;
//! ICDE 2020): the first data-series index designed for in-memory
//! operation on modern hardware, answering *exact* 1-NN similarity-search
//! queries over very large series collections at interactive speeds by
//! exploiting SIMD, multi-core parallelism, and a carefully coordinated
//! concurrent query algorithm.
//!
//! This crate is a facade over the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`index`] (re-export of `messi_core`) | the MESSI index: parallel build, one unified query engine answering exact 1-NN / k-NN / range search under ED or DTW, and the pooled batch/concurrency executor over all of them |
//! | [`baselines`] | the paper's competitors: in-memory ParIS (SIMS), ParIS-TS, UCR Suite-P |
//! | [`series`] | datasets, distance kernels (ED/DTW/LB_Keogh, scalar + AVX2), workload generators |
//! | [`sax`] | iSAX summaries, breakpoints, lower-bound (mindist) kernels |
//! | [`sync`] | the coordination substrate: dispensers, barriers, BSF, concurrent priority queues, partitioned buffers |
//!
//! ## Quick start
//!
//! ```
//! use messi::prelude::*;
//! use std::sync::Arc;
//!
//! // An in-memory collection of 2,000 z-normalized random-walk series
//! // (the paper's synthetic workload), 256 points each.
//! let data = Arc::new(messi::series::gen::generate(DatasetKind::RandomWalk, 2_000, 7));
//!
//! // Build the index in parallel and answer an exact 1-NN query.
//! let (index, build_stats) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
//! let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 7);
//! let (answer, query_stats) = index.search(queries.series(0), &QueryConfig::default());
//!
//! assert!(answer.pos < 2_000);
//! assert!(query_stats.real_distance_calcs < 2_000); // pruning at work
//! assert!(build_stats.num_leaves > 0);
//! ```
//!
//! See `examples/` for complete scenarios (quickstart, seismic similarity
//! monitoring, flight-anomaly detection, DTW search, k-NN
//! classification) and the `messi-bench` crate for the harness that
//! regenerates every figure of the paper's evaluation.

#![warn(missing_docs)]

/// The MESSI index itself (re-export of `messi_core`).
pub mod index {
    pub use messi_core::*;
}

/// The paper's baseline algorithms (re-export of `messi_baselines`).
pub mod baselines {
    pub use messi_baselines::*;
}

/// Data-series substrate (re-export of `messi_series`).
pub mod series {
    pub use messi_series::*;
}

/// iSAX summarization (re-export of `messi_sax`).
pub mod sax {
    pub use messi_sax::*;
}

/// Parallel-coordination substrate (re-export of `messi_sync`).
pub mod sync {
    pub use messi_sync::*;
}

pub use messi_core::{
    load_index, load_sharded, save_index, save_sharded, BuildStats, DeltaIndex, IndexConfig,
    IndexServer, IngestError, IngestOptions, IngestReport, IngestStats, LogError, MessiIndex,
    MetricSpec, Objective, PersistError, QueryAnswer, QueryConfig, QueryContext, QueryExecutor,
    QuerySpec, QueryStats, ReplayReport, Schedule, ServeConfig, ServeSummary, ShardedExecutor,
    ShardedIndex, StopReason,
};

/// The commonly needed imports in one place.
pub mod prelude {
    pub use messi_core::{
        load_index, load_sharded, save_index, save_sharded, BsfPolicy, BuildStats, BuildVariant,
        IndexConfig, MessiIndex, MetricSpec, Objective, PersistError, QueryAnswer, QueryConfig,
        QueryContext, QueryExecutor, QuerySpec, QueryStats, QueuePolicy, Schedule, ShardedExecutor,
        ShardedIndex, StopReason,
    };
    pub use messi_series::distance::dtw::DtwParams;
    pub use messi_series::distance::Kernel;
    pub use messi_series::gen::DatasetKind;
    pub use messi_series::Dataset;
}
