//! Statistical guarantee harness for approximate search.
//!
//! The approximate objective's contract is probabilistic — "with
//! probability calibrated by δ, the answer is within (1+ε) of the true
//! nearest neighbor" — so unlike every other suite in the repository it
//! cannot be checked one query at a time. This harness runs *many*
//! seeded trials (datasets × queries, fully deterministic) against brute
//! force and asserts the distribution:
//!
//! * **ng-approximate** (δ = 0) is deterministic: the answer equals the
//!   best series of the query's home leaf, reproduced here by an
//!   independent test-side descent over the public arena API.
//! * **δ = 1** makes the `(1+ε)` bound a hard guarantee: every single
//!   trial must satisfy it.
//! * **δ < 1** must satisfy the bound in at least a δ fraction of
//!   trials; the observed fraction and the worst approximation ratio are
//!   part of the failure message.
//!
//! Seeds are fixed, so the suite is exactly reproducible — a failure is
//! a regression, never noise.

use messi::prelude::*;
use messi::series::distance::euclidean::ed_sq_scalar;
use std::sync::Arc;

/// Small leaves so the trees are deep and δ budgets genuinely bite.
fn index_config() -> IndexConfig {
    IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 64,
        leaf_capacity: 8,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    }
}

fn build(count: usize, seed: u64) -> (Arc<Dataset>, MessiIndex) {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        count,
        seed,
    ));
    let (index, _) = MessiIndex::build(Arc::clone(&data), &index_config());
    (data, index)
}

/// One trial of the statistical harness.
struct Trial {
    /// Squared distance of the approximate answer.
    got: f32,
    /// Squared distance of the true (brute force) nearest neighbor.
    true_nn: f32,
    stop: StopReason,
}

impl Trial {
    /// `(1+ε)` satisfaction in *distance* terms, i.e. `(1+ε)²` on the
    /// squared values, with a hair of float slack.
    fn within(&self, epsilon: f32) -> bool {
        let factor = (1.0 + epsilon) * (1.0 + epsilon);
        self.got <= factor * self.true_nn * (1.0 + 1e-3) + 1e-6
    }

    /// Approximation ratio in distance terms (1.0 = exact).
    fn ratio(&self) -> f32 {
        if self.true_nn <= 0.0 {
            1.0
        } else {
            (self.got / self.true_nn).sqrt()
        }
    }
}

/// Runs the δ-ε search over a grid of seeded datasets and queries.
///
/// Trials run single-worker/single-queue: for δ < 1 the answer and stop
/// reason legitimately depend on thread interleaving (the shared visit
/// budget is spent in scheduling order), so a deterministic harness must
/// pin the schedule — the seeds then fully determine every outcome.
fn run_trials(epsilon: f32, delta: f32, config: &QueryConfig) -> Vec<Trial> {
    let config = &QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..config.clone()
    };
    let mut trials = Vec::new();
    for dataset_seed in [11u64, 23, 47] {
        let (data, index) = build(500, dataset_seed);
        let queries = messi::series::gen::queries::generate_queries(
            DatasetKind::RandomWalk,
            15,
            dataset_seed ^ 0xA5,
        );
        for q in queries.iter() {
            let (ans, stats) = index.search_approximate_bounded(q, epsilon, delta, config);
            let (_, true_nn) = data.nearest_neighbor_brute_force(q);
            // The reported distance is genuine: it matches the series it
            // points at.
            let check = ed_sq_scalar(q, data.series(ans.pos as usize));
            assert!(
                (check - ans.dist_sq).abs() <= 1e-3 * check.max(1.0),
                "answer distance {} disagrees with its own series ({check})",
                ans.dist_sq
            );
            trials.push(Trial {
                got: ans.dist_sq,
                true_nn,
                stop: stats
                    .stop_reason
                    .expect("approximate search reports a stop reason"),
            });
        }
    }
    trials
}

/// Asserts that at least `target` of the trials satisfy the `(1+ε)`
/// bound, reporting the observed fraction and worst ratio on failure.
fn assert_guarantee(trials: &[Trial], epsilon: f32, delta: f32, target: f64) {
    let ok = trials.iter().filter(|t| t.within(epsilon)).count();
    let observed = ok as f64 / trials.len() as f64;
    let worst = trials.iter().map(Trial::ratio).fold(0.0f32, f32::max);
    assert!(
        observed >= target,
        "ε = {epsilon}, δ = {delta}: observed (1+ε)-satisfaction {observed:.3} \
         ({ok}/{} trials) below the δ-calibrated target {target:.3}; \
         worst approximation ratio {worst:.4}",
        trials.len()
    );
}

// ---------------------------------------------------------------------
// (a) ng-approximate: deterministic home-leaf answers.
// ---------------------------------------------------------------------

/// Independent reimplementation of the home-leaf walk over the public
/// arena API, for queries whose home subtree exists and whose path stays
/// inside containment (guaranteed for dataset members).
fn reference_home_leaf_best(index: &MessiIndex, query: &[f32]) -> (f32, u32) {
    use messi::index::node::TreeArena;
    let (sax, _) = index.summarize_query(query);
    let segments = index.sax_config().segments;
    let key = messi::sax::root_key::root_key(&sax, segments);
    let arena = index.root(key).expect("member query has a home subtree");
    let id = arena.descend_by_sax(TreeArena::ROOT, &sax, segments);
    let mut best = (f32::INFINITY, u32::MAX);
    for e in arena.leaf_entries(id) {
        let d = ed_sq_scalar(query, index.dataset().series(e.pos as usize));
        if d < best.0 {
            best = (d, e.pos);
        }
    }
    best
}

#[test]
fn ng_approximate_equals_home_leaf_best() {
    let (_, index) = build(400, 7);
    let config = QueryConfig::for_tests();
    for probe in [0usize, 57, 123, 399] {
        let q = index.dataset().series(probe).to_vec();
        let (ans, stats) = index.search_approximate_bounded(&q, 0.0, 0.0, &config);
        let (want_d, _) = reference_home_leaf_best(&index, &q);
        assert_eq!(
            ans.dist_sq.to_bits(),
            want_d.to_bits(),
            "ng answer diverged from the independent home-leaf walk (probe {probe})"
        );
        assert_eq!(ans.dist_sq, 0.0, "a member query's home leaf contains it");
        assert_eq!(stats.stop_reason, Some(StopReason::HomeLeafOnly));
        assert_eq!(stats.nodes_inserted, 0, "ng runs no tree pass");
    }
}

#[test]
fn ng_approximate_is_deterministic_and_upper_bounds_exact() {
    let (data, index) = build(350, 13);
    let config = QueryConfig::for_tests();
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 8, 13);
    for q in queries.iter() {
        let (a, _) = index.search_approximate_bounded(q, 0.0, 0.0, &config);
        let (b, _) = index.search_approximate_bounded(q, 0.0, 0.0, &config);
        assert_eq!(
            a.dist_sq.to_bits(),
            b.dist_sq.to_bits(),
            "ng must be deterministic"
        );
        assert_eq!(a.pos, b.pos);
        // The legacy one-shot API is the same ng instance.
        let legacy = index.search_approximate(q, Kernel::Auto);
        assert_eq!(a.dist_sq.to_bits(), legacy.dist_sq.to_bits());
        assert_eq!(a.pos, legacy.pos);
        // And it never beats the exact answer.
        let (_, true_nn) = data.nearest_neighbor_brute_force(q);
        assert!(a.dist_sq >= true_nn - 1e-4 * true_nn.max(1.0));
    }
}

// ---------------------------------------------------------------------
// (b) δ-ε: the statistical guarantee against brute force.
// ---------------------------------------------------------------------

#[test]
fn delta_one_guarantee_holds_in_every_trial() {
    let config = QueryConfig::for_tests();
    for epsilon in [0.0f32, 0.1, 0.5] {
        let trials = run_trials(epsilon, 1.0, &config);
        // δ = 1: a hard, deterministic guarantee — every trial.
        assert_guarantee(&trials, epsilon, 1.0, 1.0);
        for t in &trials {
            assert_eq!(
                t.stop,
                StopReason::Completed,
                "δ = 1 admits every queued leaf — the budget can never run out"
            );
        }
    }
}

#[test]
fn delta_fraction_guarantee_is_calibrated() {
    let config = QueryConfig::for_tests();
    // The budget (`ceil(δ · leaves)`, spent best-bound-first) makes the
    // observed satisfaction far exceed δ in practice; δ itself is the
    // asserted floor.
    for (epsilon, delta) in [(0.0f32, 0.75f32), (0.1, 0.5), (0.2, 0.25), (0.0, 0.05)] {
        let trials = run_trials(epsilon, delta, &config);
        assert_guarantee(&trials, epsilon, delta, delta as f64);
    }
}

#[test]
fn tiny_delta_actually_stops_early() {
    let config = QueryConfig::for_tests();
    let trials = run_trials(0.0, 0.02, &config);
    let exhausted = trials
        .iter()
        .filter(|t| t.stop == StopReason::BudgetExhausted)
        .count();
    assert!(
        exhausted > 0,
        "a 2% leaf budget over deep trees never hit its early-termination path \
         ({} trials, all completed)",
        trials.len()
    );
    // Even then the answers must be genuine series distances and the
    // harness's floor must hold.
    assert_guarantee(&trials, 0.0, 0.02, 0.02);
}

#[test]
fn epsilon_inflation_is_accounted() {
    // A fat ε prunes candidates the raw BSF would have kept; the
    // accounting must see it. Deterministic single-worker runs so the
    // counter itself is reproducible.
    let config = QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::for_tests()
    };
    let (_, index) = build(600, 29);
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 10, 29);
    let mut inflation_total = 0u64;
    for q in queries.iter() {
        let (_, stats) = index.search_approximate_bounded(q, 1.0, 1.0, &config);
        inflation_total += stats.approx_inflation_prunes;
        // At ε = 0 the same query must report zero inflation prunes.
        let (_, exact_like) = index.search_approximate_bounded(q, 0.0, 1.0, &config);
        assert_eq!(exact_like.approx_inflation_prunes, 0);
    }
    assert!(
        inflation_total > 0,
        "ε = 1 never pruned anything the raw BSF would have kept"
    );
}

// ---------------------------------------------------------------------
// The exec layer serves the approximate objective like any other.
// ---------------------------------------------------------------------

#[test]
fn executor_schedules_agree_on_approximate_answers() {
    let (_, index) = build(400, 31);
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 31);
    let config = QueryConfig::for_tests();
    let exec = index.executor();
    for spec in [
        QuerySpec::approximate(0.1, 1.0),
        QuerySpec::approximate(0.0, 0.5),
        QuerySpec::approximate(0.2, 0.5).with_dtw(DtwParams::paper_default(256)),
    ] {
        let (inter, agg) = exec.run_batch(
            &queries,
            &spec,
            Schedule::InterQuery { parallelism: 3 },
            &config,
        );
        assert_eq!(agg.queries, queries.len() as u64);
        // Inter-query runs are single-threaded per query: bit-identical
        // to a sequential run under the same 1-worker config.
        let per_query = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            ..config.clone()
        };
        for (qi, got) in inter.iter().enumerate() {
            let (want, _) = exec.run_one(queries.series(qi), &spec, &per_query);
            assert_eq!(got, &want, "{spec:?} query {qi}");
        }
    }
}

#[test]
fn approximate_dtw_guarantee_at_delta_one() {
    use messi::series::distance::dtw::dtw_sq;
    let (data, index) = build(200, 37);
    let params = DtwParams::paper_default(256);
    let config = QueryConfig::for_tests();
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 37);
    let epsilon = 0.25f32;
    let factor = (1.0 + epsilon) * (1.0 + epsilon);
    for q in queries.iter() {
        let (ans, stats) = index.search_approximate_bounded_dtw(q, epsilon, 1.0, params, &config);
        let true_nn = data
            .iter()
            .map(|s| dtw_sq(q, s, params))
            .fold(f32::INFINITY, f32::min);
        assert!(
            ans.dist_sq <= factor * true_nn * (1.0 + 1e-3),
            "DTW δ=1 guarantee violated: {} vs (1+ε)²·{true_nn} \
             (observed ratio {:.4})",
            ans.dist_sq,
            (ans.dist_sq / true_nn).sqrt()
        );
        assert_eq!(stats.stop_reason, Some(StopReason::Completed));
    }
}
