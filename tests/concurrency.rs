//! Concurrency stress tests: shared indexes under concurrent query load,
//! repeated parallel builds, and mixed algorithm traffic.
//!
//! The paper's data structures are lock-free or finely locked; these
//! tests hammer them from many caller threads to surface races that the
//! single-caller tests cannot (the pool serializes *worker* jobs, but
//! callers, BSF, queues, and counters are still exercised concurrently).

use messi::baselines::paris::query::sims_search;
use messi::baselines::paris::{build_paris, ParisBuildVariant};
use messi::prelude::*;
use std::sync::Arc;

fn test_index(count: usize, seed: u64) -> (Arc<Dataset>, MessiIndex) {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        count,
        seed,
    ));
    let config = IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 64,
        leaf_capacity: 32,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    (data, index)
}

#[test]
fn concurrent_queries_on_shared_index_stay_exact() {
    let (data, index) = test_index(500, 7);
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 8, 7);
    let expected: Vec<(usize, f32)> = queries
        .iter()
        .map(|q| data.nearest_neighbor_brute_force(q))
        .collect();
    std::thread::scope(|s| {
        for t in 0..6 {
            let index = &index;
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                let config = QueryConfig {
                    num_workers: 1 + t % 4,
                    num_queues: 1 + t % 3,
                    ..QueryConfig::default()
                };
                for round in 0..5 {
                    let qi = (t + round) % queries.len();
                    let (ans, _) = index.search(queries.series(qi), &config);
                    let (_, bf) = expected[qi];
                    assert!(
                        (ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0),
                        "thread {t} round {round}: {} vs {bf}",
                        ans.dist_sq
                    );
                }
            });
        }
    });
}

#[test]
fn concurrent_mixed_algorithms_agree() {
    let (data, index) = test_index(400, 11);
    let (paris, _) = build_paris(Arc::clone(&data), index.config(), ParisBuildVariant::Locked);
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 11);
    std::thread::scope(|s| {
        for t in 0..4 {
            let index = &index;
            let paris = &paris;
            let queries = &queries;
            let data = &data;
            s.spawn(move || {
                let config = QueryConfig::default();
                for qi in 0..queries.len() {
                    let q = queries.series(qi);
                    let a = match t % 3 {
                        0 => index.search(q, &config).0,
                        1 => sims_search(paris, q, &config).0,
                        _ => messi::baselines::ucr::ucr_parallel(data, q, &config).0,
                    };
                    let (_, bf) = data.nearest_neighbor_brute_force(q);
                    assert!((a.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
                }
            });
        }
    });
}

#[test]
fn concurrent_builds_do_not_interfere() {
    // Multiple indexes built simultaneously from different datasets; each
    // must come out valid.
    std::thread::scope(|s| {
        for seed in 0..4u64 {
            s.spawn(move || {
                let (_, index) = test_index(300, 100 + seed);
                let errors = messi::index::validate::validate(&index);
                assert!(errors.is_empty(), "seed {seed}: {errors:?}");
            });
        }
    });
}

#[test]
fn rebuilds_of_same_data_are_structurally_identical() {
    // Racing the same build repeatedly: leaf contents must be a pure
    // function of (data, config), not of scheduling.
    let data = Arc::new(messi::series::gen::generate(DatasetKind::Seismic, 400, 3));
    let config = IndexConfig {
        segments: 8,
        num_workers: 8,
        chunk_size: 10,
        leaf_capacity: 16,
        initial_buffer_capacity: 2,
        variant: messi::index::BuildVariant::Buffered,
    };
    let collect = |index: &MessiIndex| {
        let mut per_key: Vec<(usize, Vec<u32>)> = Vec::new();
        for &key in index.touched_keys() {
            let mut v = Vec::new();
            index
                .root(key)
                .unwrap()
                .for_each_leaf(&mut |l| v.extend(l.entries.iter().map(|e| e.pos)));
            v.sort_unstable();
            per_key.push((key, v));
        }
        (index.num_leaves(), per_key)
    };
    let (reference, _) = MessiIndex::build(Arc::clone(&data), &config);
    let reference = collect(&reference);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let data = Arc::clone(&data);
            let config = config.clone();
            let reference = &reference;
            s.spawn(move || {
                let (index, _) = MessiIndex::build(data, &config);
                assert_eq!(&collect(&index), reference);
            });
        }
    });
}

#[test]
fn query_stats_are_internally_consistent_under_load() {
    let (_, index) = test_index(600, 17);
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 17);
    for q in queries.iter() {
        let (_, stats) = index.search(q, &QueryConfig::default());
        assert!(stats.nodes_popped <= stats.nodes_inserted);
        assert!(stats.nodes_filtered_on_pop <= stats.nodes_popped);
        assert!(stats.real_distance_calcs <= stats.lb_distance_calcs);
        assert!(stats.bsf_updates <= stats.real_distance_calcs + 1);
    }
}
