//! Exactness and validity across the whole configuration space the
//! paper's tuning experiments sweep (Figs. 5–8, 14): chunk sizes, leaf
//! capacities, buffer capacities, segment counts, queue counts, worker
//! counts, BSF policies — every combination must stay exact.

use messi::prelude::*;
use std::sync::Arc;

fn check_exact(index: &MessiIndex, data: &Dataset, queries: &Dataset, qc: &QueryConfig) {
    for q in queries.iter() {
        let (ans, _) = index.search(q, qc);
        let (_, bf) = data.nearest_neighbor_brute_force(q);
        assert!(
            (ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0),
            "{:?}: {} vs {bf}",
            qc,
            ans.dist_sq
        );
    }
}

#[test]
fn build_parameter_sweep_preserves_exactness() {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        400,
        5,
    ));
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 5);
    let qc = QueryConfig {
        num_workers: 4,
        num_queues: 3,
        ..QueryConfig::default()
    };
    for chunk_size in [1usize, 3, 64, 1_000_000] {
        for leaf_capacity in [1usize, 7, 100, 10_000] {
            for initial_buffer_capacity in [0usize, 1, 5, 1000] {
                let config = IndexConfig {
                    segments: 8,
                    num_workers: 4,
                    chunk_size,
                    leaf_capacity,
                    initial_buffer_capacity,
                    variant: messi::index::BuildVariant::Buffered,
                };
                let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
                let errors = messi::index::validate::validate(&index);
                assert!(
                    errors.is_empty(),
                    "chunk={chunk_size} leaf={leaf_capacity}: {errors:?}"
                );
                check_exact(&index, &data, &queries, &qc);
            }
        }
    }
}

#[test]
fn segment_count_sweep() {
    // The paper fixes w = 16; the implementation supports 1..=16 and must
    // stay exact at every setting (pruning power varies, answers don't).
    let data = Arc::new(messi::series::gen::generate(DatasetKind::Sald, 300, 9));
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::Sald, 2, 9);
    for segments in [1usize, 2, 4, 8, 12, 16] {
        let config = IndexConfig {
            segments,
            num_workers: 4,
            chunk_size: 50,
            leaf_capacity: 32,
            initial_buffer_capacity: 5,
            variant: messi::index::BuildVariant::Buffered,
        };
        let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
        let errors = messi::index::validate::validate(&index);
        assert!(errors.is_empty(), "segments={segments}: {errors:?}");
        check_exact(&index, &data, &queries, &QueryConfig::default());
    }
}

#[test]
fn query_parameter_sweep_preserves_exactness() {
    let data = Arc::new(messi::series::gen::generate(DatasetKind::Seismic, 500, 13));
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::Seismic, 2, 13);
    let config = IndexConfig {
        segments: 16,
        num_workers: 4,
        chunk_size: 64,
        leaf_capacity: 32,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    for num_workers in [1usize, 2, 5, 24, 48] {
        for num_queues in [1usize, 2, 24, 64] {
            for bsf in [BsfPolicy::Atomic, BsfPolicy::Locked] {
                let qc = QueryConfig {
                    num_workers,
                    num_queues,
                    bsf,
                    kernel: Kernel::Auto,
                    queue_policy: messi::index::QueuePolicy::SharedRoundRobin,
                    collect_breakdown: num_workers == 5,
                    run_batch: messi::index::RunBatchPolicy::default(),
                };
                check_exact(&index, &data, &queries, &qc);
            }
        }
    }
}

#[test]
fn queue_policy_and_build_variant_sweep() {
    // The rejected designs (per-worker local queues, no-buffer build)
    // must still be exact — the paper rejected them for speed, not
    // correctness.
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        400,
        21,
    ));
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 21);
    for variant in [
        messi::index::BuildVariant::Buffered,
        messi::index::BuildVariant::NoBuffers,
    ] {
        let config = IndexConfig {
            segments: 8,
            num_workers: 4,
            chunk_size: 64,
            leaf_capacity: 32,
            initial_buffer_capacity: 5,
            variant,
        };
        let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
        for policy in [
            messi::index::QueuePolicy::SharedRoundRobin,
            messi::index::QueuePolicy::PerWorkerLocal,
        ] {
            for workers in [1usize, 3, 8] {
                let qc = QueryConfig {
                    num_workers: workers,
                    queue_policy: policy,
                    ..QueryConfig::default()
                };
                check_exact(&index, &data, &queries, &qc);
            }
        }
    }
}

#[test]
fn range_search_is_exact_across_configs() {
    let data = Arc::new(messi::series::gen::generate(DatasetKind::Sald, 300, 31));
    let config = IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 50,
        leaf_capacity: 16,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::Sald, 2, 31);
    for q in queries.iter() {
        let (_, nn) = data.nearest_neighbor_brute_force(q);
        let eps = nn * 3.0;
        let expect: usize = data
            .iter()
            .filter(|s| messi::series::distance::euclidean::ed_sq_scalar(q, s) <= eps * 0.999)
            .count();
        for workers in [1usize, 4, 16] {
            let qc = QueryConfig {
                num_workers: workers,
                ..QueryConfig::default()
            };
            let (got, _) = messi::index::range::range_search(&index, q, eps, &qc);
            assert!(
                got.len() >= expect,
                "workers={workers}: found {} < clearly-inside {expect}",
                got.len()
            );
        }
    }
}

#[test]
fn non_multiple_series_length_is_supported() {
    // 100 points into 16 segments: ragged PAA segments (6 or 7 points).
    let gen = DatasetKind::RandomWalk.generator_with_len(21, 100);
    let data = Arc::new(messi::series::gen::generate_dataset(gen.as_ref(), 300));
    let config = IndexConfig {
        segments: 16,
        num_workers: 4,
        chunk_size: 32,
        leaf_capacity: 16,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    let errors = messi::index::validate::validate(&index);
    assert!(errors.is_empty(), "{errors:?}");
    let queries =
        messi::series::gen::queries::generate_queries_with_len(DatasetKind::RandomWalk, 3, 21, 100);
    check_exact(&index, &data, &queries, &QueryConfig::default());
}

#[test]
fn short_series_lengths() {
    for len in [16usize, 32, 48] {
        let gen = DatasetKind::RandomWalk.generator_with_len(31, len);
        let data = Arc::new(messi::series::gen::generate_dataset(gen.as_ref(), 200));
        let config = IndexConfig {
            segments: 8.min(len),
            num_workers: 3,
            chunk_size: 16,
            leaf_capacity: 16,
            initial_buffer_capacity: 5,
            variant: messi::index::BuildVariant::Buffered,
        };
        let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
        let queries = messi::series::gen::queries::generate_queries_with_len(
            DatasetKind::RandomWalk,
            2,
            31,
            len,
        );
        check_exact(&index, &data, &queries, &QueryConfig::default());
    }
}

#[test]
fn single_series_dataset() {
    let gen = DatasetKind::RandomWalk.generator_with_len(1, 64);
    let data = Arc::new(messi::series::gen::generate_dataset(gen.as_ref(), 1));
    let (index, stats) = MessiIndex::build(
        Arc::clone(&data),
        &IndexConfig {
            segments: 8,
            num_workers: 4,
            chunk_size: 64,
            leaf_capacity: 4,
            initial_buffer_capacity: 5,
            variant: messi::index::BuildVariant::Buffered,
        },
    );
    assert_eq!(stats.num_series, 1);
    let q = data.series(0).to_vec();
    let (ans, _) = index.search(&q, &QueryConfig::default());
    assert_eq!(ans.pos, 0);
    assert_eq!(ans.dist_sq, 0.0);
}
