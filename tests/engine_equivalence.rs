//! Property-based equivalence of the unified query engine.
//!
//! All three search objectives — exact 1-NN, k-NN, and ε-range — are
//! adapters over one engine driver, so their answers are related by
//! construction and must stay related for *any* dataset, configuration,
//! and worker count:
//!
//! * each objective matches its brute-force oracle;
//! * `knn(k = 1)` equals `exact_search`;
//! * range search at ε = the k-NN's k-th distance returns a superset of
//!   the k-NN result (the k nearest all lie within that radius);
//! * batches through the pooled executor — every objective × metric ×
//!   schedule × worker count — are element-wise identical to the
//!   sequential single-query answers, and the pooled contexts record
//!   zero `alloc_events` after warm-up;
//! * the approximate objective at its exact corner
//!   (`Approx { epsilon: 0, delta: 1 }`) is bit-identical to `Exact` —
//!   answers *and* pruning counters — for every metric × schedule ×
//!   worker count.

use messi::prelude::*;
use messi::series::distance::euclidean::ed_sq_scalar;
use proptest::prelude::*;
use std::sync::Arc;

/// One randomly drawn scenario: a dataset and a full query configuration.
#[derive(Debug, Clone)]
struct Scenario {
    count: usize,
    seed: u64,
    num_workers: usize,
    num_queues: usize,
    k: usize,
    scalar_kernel: bool,
    locked_bsf: bool,
    local_queues: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (30usize..250, 0u64..1_000_000),
        (1usize..=8, 1usize..=5, 1usize..=8),
        (
            proptest::bool::ANY,
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
    )
        .prop_map(
            |(
                (count, seed),
                (num_workers, num_queues, k),
                (scalar_kernel, locked_bsf, local_queues),
            )| Scenario {
                count,
                seed,
                num_workers,
                num_queues,
                k,
                scalar_kernel,
                locked_bsf,
                local_queues,
            },
        )
}

fn query_config(s: &Scenario) -> QueryConfig {
    QueryConfig {
        num_workers: s.num_workers,
        num_queues: s.num_queues,
        kernel: if s.scalar_kernel {
            Kernel::Scalar
        } else {
            Kernel::Auto
        },
        bsf: if s.locked_bsf {
            BsfPolicy::Locked
        } else {
            BsfPolicy::Atomic
        },
        queue_policy: if s.local_queues {
            messi::index::QueuePolicy::PerWorkerLocal
        } else {
            messi::index::QueuePolicy::SharedRoundRobin
        },
        collect_breakdown: false,
        run_batch: messi::index::RunBatchPolicy::default(),
    }
}

fn build_index(s: &Scenario) -> (Arc<Dataset>, MessiIndex) {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        s.count,
        s.seed,
    ));
    let config = IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 32,
        leaf_capacity: 16,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    (data, index)
}

fn brute_force_knn(data: &Dataset, query: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut all: Vec<(u32, f32)> = data
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u32, ed_sq_scalar(query, s)))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * b.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_objectives_agree_with_brute_force_and_each_other(s in scenario()) {
        let (data, index) = build_index(&s);
        let config = query_config(&s);
        let queries =
            messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 2, s.seed);
        let k = s.k.min(data.len());

        for q in queries.iter() {
            // --- exact 1-NN matches brute force ---
            let (one, _) = index.search(q, &config);
            let (_, bf_nn) = data.nearest_neighbor_brute_force(q);
            prop_assert!(
                close(one.dist_sq, bf_nn),
                "1-NN {} vs brute force {bf_nn} ({s:?})",
                one.dist_sq
            );

            // --- k-NN matches brute force, ascending, no duplicates ---
            let (knn, _) = index.search_knn(q, k, &config);
            let expect = brute_force_knn(&data, q, k);
            prop_assert_eq!(knn.len(), k);
            for (got, (_, bf)) in knn.iter().zip(&expect) {
                prop_assert!(
                    close(got.dist_sq, *bf),
                    "k-NN {} vs brute force {bf} ({s:?})",
                    got.dist_sq
                );
            }
            for w in knn.windows(2) {
                prop_assert!(w[0].dist_sq <= w[1].dist_sq + 1e-6);
            }
            let mut positions: Vec<u64> = knn.iter().map(|a| a.pos).collect();
            positions.sort_unstable();
            positions.dedup();
            prop_assert_eq!(positions.len(), k, "duplicate k-NN positions");

            // --- knn(k = 1) equals exact_search ---
            let (top1, _) = index.search_knn(q, 1, &config);
            prop_assert!(
                close(top1[0].dist_sq, one.dist_sq),
                "knn(1) {} vs exact {} ({s:?})",
                top1[0].dist_sq,
                one.dist_sq
            );

            // --- range at the k-th distance is a superset of k-NN ---
            // A hair of slack keeps SIMD-vs-scalar ulp disagreement at the
            // radius boundary from turning containment into a coin flip.
            let kth = knn.last().expect("k >= 1").dist_sq;
            let eps = kth * (1.0 + 1e-3) + 1e-6;
            let (hits, _) = index.search_range(q, eps, &config);
            prop_assert!(hits.len() >= k, "{} range hits < k = {k} ({s:?})", hits.len());
            for a in &knn {
                prop_assert!(
                    hits.iter().any(|h| h.pos == a.pos),
                    "k-NN member {} (d = {}) missing from range at ε = {eps} ({s:?})",
                    a.pos,
                    a.dist_sq
                );
            }
            // And every range hit is genuinely within the radius.
            for h in &hits {
                let d = ed_sq_scalar(q, data.series(h.pos as usize));
                prop_assert!(
                    d <= eps * (1.0 + 1e-3),
                    "range hit {} at distance {d} outside ε = {eps} ({s:?})",
                    h.pos
                );
            }
        }
    }

    #[test]
    fn member_queries_find_themselves_under_any_config(s in scenario()) {
        let (data, index) = build_index(&s);
        let config = query_config(&s);
        let probe = (s.seed as usize) % data.len();
        let q = data.series(probe).to_vec();
        let (one, _) = index.search(&q, &config);
        prop_assert_eq!(one.dist_sq, 0.0);
        let (knn, _) = index.search_knn(&q, 1, &config);
        prop_assert_eq!(knn[0].dist_sq, 0.0);
        let (hits, _) = index.search_range(&q, 0.0, &config);
        prop_assert!(hits.iter().any(|h| h.pos == probe as u64));
    }
}

/// Every cell of the Objective × Metric matrix for one scenario: exact,
/// k-NN, and range, under Euclidean and banded DTW. The range radius is
/// anchored to the scenario's k-th Euclidean neighbor so results are
/// non-trivial for both metrics (DTW ≤ ED, so the DTW radius matches at
/// least as much).
fn matrix_specs(data: &Dataset, index: &MessiIndex, s: &Scenario, k: usize) -> Vec<QuerySpec> {
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 1, s.seed);
    let (knn, _) = index.search_knn(queries.series(0), k, &query_config(s));
    let epsilon_sq = knn.last().expect("k >= 1").dist_sq * 1.5 + 1e-3;
    let params = DtwParams::paper_default(data.series_len());
    vec![
        QuerySpec::exact(),
        QuerySpec::knn(k),
        QuerySpec::range(epsilon_sq),
        QuerySpec::exact().with_dtw(params),
        QuerySpec::knn(k).with_dtw(params),
        QuerySpec::range(epsilon_sq).with_dtw(params),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pooled_batches_match_sequential_single_query_answers(s in scenario()) {
        let (data, index) = build_index(&s);
        let config = query_config(&s);
        let k = s.k.min(data.len());
        let queries =
            messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 3, s.seed ^ 1);
        let exec = index.executor();

        for spec in matrix_specs(&data, &index, &s, k) {
            // --- Inter-query schedule: each query runs single-threaded,
            // so batch answers are bit-identical to a sequential
            // single-query run under the same 1-worker/1-queue config.
            let (batch, agg) = exec.run_batch(
                &queries,
                &spec,
                Schedule::InterQuery { parallelism: s.num_workers },
                &config,
            );
            prop_assert_eq!(agg.queries, queries.len() as u64);
            prop_assert_eq!(batch.len(), queries.len());
            let per_query = QueryConfig { num_workers: 1, num_queues: 1, ..config.clone() };
            for (qi, got) in batch.iter().enumerate() {
                let (want, _) = exec.run_one(queries.series(qi), &spec, &per_query);
                prop_assert_eq!(
                    got, &want,
                    "inter batch diverged from sequential answers: {:?} query {}",
                    spec, qi
                );
            }

            // --- Intra-query schedule: same worker complement as a
            // direct single query; multi-worker runs may break exact
            // distance ties differently, so compare by distance.
            let (batch, agg) = exec.run_batch(&queries, &spec, Schedule::IntraQuery, &config);
            prop_assert_eq!(agg.queries, queries.len() as u64);
            for (qi, got) in batch.iter().enumerate() {
                let (want, _) = exec.run_one(queries.series(qi), &spec, &config);
                prop_assert_eq!(got.len(), want.len(), "{:?} query {}", spec, qi);
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!(
                        close(g.dist_sq, w.dist_sq),
                        "intra batch {} vs single {} ({:?} query {})",
                        g.dist_sq, w.dist_sq, spec, qi
                    );
                }
            }
        }
    }

    #[test]
    fn approx_exact_corner_is_bit_identical_to_exact(s in scenario()) {
        // `Approx { epsilon: 0, delta: 1 }` has a bound scale of exactly
        // 1.0 and an unlimited leaf budget: every comparison the driver
        // makes is the one exact search makes. The observable consequence
        // — here made a property over the full metric × schedule × worker
        // matrix — is bit-identical answers AND pruning counters.
        let (data, index) = build_index(&s);
        let config = query_config(&s);
        let queries =
            messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 3, s.seed ^ 3);
        let params = DtwParams::paper_default(data.series_len());
        let exec = index.executor();

        for (exact_spec, approx_spec) in [
            (QuerySpec::exact(), QuerySpec::approximate(0.0, 1.0)),
            (
                QuerySpec::exact().with_dtw(params),
                QuerySpec::approximate(0.0, 1.0).with_dtw(params),
            ),
        ] {
            // --- Per-query, single-worker (fully deterministic): every
            // pruning counter must agree, not just the answers.
            let per_query = QueryConfig { num_workers: 1, num_queues: 1, ..config.clone() };
            for q in queries.iter() {
                let (a, sa) = exec.run_one(q, &exact_spec, &per_query);
                let (b, sb) = exec.run_one(q, &approx_spec, &per_query);
                prop_assert_eq!(&a, &b, "answers diverged ({:?})", s);
                prop_assert_eq!(sa.lb_distance_calcs, sb.lb_distance_calcs, "lb calcs");
                prop_assert_eq!(sa.real_distance_calcs, sb.real_distance_calcs, "real calcs");
                prop_assert_eq!(sa.bsf_updates, sb.bsf_updates, "bsf updates");
                prop_assert_eq!(sa.nodes_inserted, sb.nodes_inserted, "queue insertions");
                prop_assert_eq!(sa.nodes_popped, sb.nodes_popped, "queue pops");
                prop_assert_eq!(sa.nodes_filtered_on_pop, sb.nodes_filtered_on_pop, "second filtering");
                prop_assert_eq!(
                    sa.initial_bsf_dist_sq.to_bits(), sb.initial_bsf_dist_sq.to_bits(),
                    "home-leaf seed"
                );
                prop_assert_eq!(sb.approx_inflation_prunes, 0u64, "ε = 0 never inflates");
                prop_assert_eq!(sb.stop_reason, Some(StopReason::Completed), "δ = 1 never stops early");
            }

            // --- Inter-query schedule at the scenario's worker count:
            // each query runs single-threaded, so the whole batch is
            // deterministic for any parallelism — bit-identical again.
            let (a, sa) = exec.run_batch(
                &queries, &exact_spec,
                Schedule::InterQuery { parallelism: s.num_workers }, &config,
            );
            let (b, sb) = exec.run_batch(
                &queries, &approx_spec,
                Schedule::InterQuery { parallelism: s.num_workers }, &config,
            );
            prop_assert_eq!(&a, &b, "inter-batch answers diverged ({:?})", s);
            prop_assert_eq!(sa.lb_distance_calcs, sb.lb_distance_calcs);
            prop_assert_eq!(sa.real_distance_calcs, sb.real_distance_calcs);
            prop_assert_eq!(sa.bsf_updates, sb.bsf_updates);

            // --- Intra-query schedule at the scenario's worker count:
            // multi-worker runs race the shared BSF, so exact distance
            // ties may resolve to different positions and counters may
            // wobble — but the minimal distance is unique, so the
            // distances must still agree bit for bit.
            let (a, _) = exec.run_batch(&queries, &exact_spec, Schedule::IntraQuery, &config);
            let (b, _) = exec.run_batch(&queries, &approx_spec, Schedule::IntraQuery, &config);
            prop_assert_eq!(a.len(), b.len());
            for (qa, qb) in a.iter().zip(&b) {
                prop_assert_eq!(qa.len(), qb.len());
                for (x, y) in qa.iter().zip(qb) {
                    prop_assert_eq!(
                        x.dist_sq.to_bits(), y.dist_sq.to_bits(),
                        "intra distances diverged ({:?})", s
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_contexts_stay_allocation_free_after_warmup(s in scenario()) {
        let (data, index) = build_index(&s);
        let config = query_config(&s);
        let k = s.k.min(data.len());
        let queries =
            messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, s.seed ^ 2);
        let parallelism = s.num_workers;
        let mut exec = QueryExecutor::with_capacity(&index, parallelism);

        // Deterministic warm-up: every pooled context answers one query.
        exec.prewarm(queries.series(0), &QuerySpec::exact(), &config);
        prop_assert!(exec.warm_alloc_events() > 0, "warm-up builds the scratch");

        // For each cell × schedule, the first batch may reshape the
        // scratch (queue-count changes between schedules are resets, and
        // growth is counted); an identical second batch must record zero
        // further alloc_events in any pooled context.
        for spec in matrix_specs(&data, &index, &s, k) {
            for schedule in [
                Schedule::IntraQuery,
                Schedule::InterQuery { parallelism },
            ] {
                let _ = exec.run_batch(&queries, &spec, schedule, &config);
                let warm = exec.warm_alloc_events();
                let _ = exec.run_batch(&queries, &spec, schedule, &config);
                prop_assert_eq!(
                    exec.warm_alloc_events(),
                    warm,
                    "repeat batch allocated pooled scratch: {:?} {:?}",
                    spec,
                    schedule
                );
            }
        }
    }
}
