//! Cross-crate exactness: every algorithm in the repository returns the
//! brute-force 1-NN answer, on every dataset family.
//!
//! This is the master correctness property of the paper: all compared
//! algorithms are *exact*; they differ only in speed. Any divergence here
//! would invalidate every benchmark.

use messi::baselines::paris::query::sims_search;
use messi::baselines::paris::ts::ts_search;
use messi::baselines::paris::{build_paris, ParisBuildVariant};
use messi::baselines::ucr;
use messi::prelude::*;
use std::sync::Arc;

const COUNT: usize = 700;

fn dataset(kind: DatasetKind, seed: u64) -> Arc<Dataset> {
    Arc::new(messi::series::gen::generate(kind, COUNT, seed))
}

fn index_config() -> IndexConfig {
    IndexConfig {
        segments: 16,
        num_workers: 6,
        chunk_size: 100,
        leaf_capacity: 64,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    }
}

fn check(dist_sq: f32, bf_dist: f32, what: &str) {
    assert!(
        (dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
        "{what}: {dist_sq} vs brute force {bf_dist}"
    );
}

#[test]
fn all_algorithms_match_brute_force_on_all_dataset_families() {
    for kind in [
        DatasetKind::RandomWalk,
        DatasetKind::Seismic,
        DatasetKind::Sald,
    ] {
        let data = dataset(kind, 101);
        let (messi, _) = MessiIndex::build(Arc::clone(&data), &index_config());
        let (paris, _) = build_paris(
            Arc::clone(&data),
            &index_config(),
            ParisBuildVariant::Locked,
        );
        let queries = messi::series::gen::queries::generate_queries(kind, 5, 101);
        let qc = QueryConfig {
            num_workers: 6,
            num_queues: 4,
            ..QueryConfig::default()
        };
        for (qi, q) in queries.iter().enumerate() {
            let (_, bf_dist) = data.nearest_neighbor_brute_force(q);
            let what = format!("{kind:?} query {qi}");

            let (a, _) = messi.search(q, &qc);
            check(a.dist_sq, bf_dist, &format!("MESSI-mq {what}"));

            let (a, _) = messi.search(
                q,
                &QueryConfig {
                    num_queues: 1,
                    ..qc.clone()
                },
            );
            check(a.dist_sq, bf_dist, &format!("MESSI-sq {what}"));

            let (a, _) = sims_search(&paris, q, &qc);
            check(a.dist_sq, bf_dist, &format!("ParIS {what}"));

            let (a, _) = ts_search(&paris, q, &qc);
            check(a.dist_sq, bf_dist, &format!("ParIS-TS {what}"));

            let (a, _) = ucr::ucr_parallel(&data, q, &qc);
            check(a.dist_sq, bf_dist, &format!("UCR-P {what}"));

            let (a, _) = ucr::ucr_serial(&data, q, Kernel::Auto);
            check(a.dist_sq, bf_dist, &format!("UCR serial {what}"));
        }
    }
}

#[test]
fn sisd_and_simd_agree_everywhere() {
    let data = dataset(DatasetKind::RandomWalk, 33);
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &index_config());
    let (paris, _) = build_paris(
        Arc::clone(&data),
        &index_config(),
        ParisBuildVariant::Locked,
    );
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 33);
    for q in queries.iter() {
        let simd = QueryConfig {
            kernel: Kernel::Simd,
            num_workers: 4,
            ..QueryConfig::default()
        };
        let sisd = QueryConfig {
            kernel: Kernel::Scalar,
            num_workers: 4,
            ..QueryConfig::default()
        };
        let (a, _) = messi.search(q, &simd);
        let (b, _) = messi.search(q, &sisd);
        check(a.dist_sq, b.dist_sq, "MESSI simd-vs-sisd");
        let (a, _) = sims_search(&paris, q, &simd);
        let (b, _) = sims_search(&paris, q, &sisd);
        check(a.dist_sq, b.dist_sq, "ParIS simd-vs-sisd");
    }
}

#[test]
fn dtw_algorithms_agree() {
    let data = dataset(DatasetKind::Sald, 44);
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &index_config());
    let params = DtwParams::paper_default(data.series_len());
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::Sald, 4, 44);
    let qc = QueryConfig {
        num_workers: 6,
        ..QueryConfig::default()
    };
    for q in queries.iter() {
        let (a, _) = messi::index::dtw::exact_search_dtw(&messi, q, params, &qc);
        let (b, _) = ucr::ucr_serial_dtw(&data, q, params);
        let (c, _) = ucr::ucr_parallel_dtw(&data, q, params, &qc);
        check(a.dist_sq, b.dist_sq, "MESSI-DTW vs UCR-DTW");
        check(c.dist_sq, b.dist_sq, "UCR-P-DTW vs UCR-DTW");
    }
}

#[test]
fn paris_no_synch_build_answers_exactly() {
    let data = dataset(DatasetKind::RandomWalk, 55);
    let (paris, _) = build_paris(
        Arc::clone(&data),
        &index_config(),
        ParisBuildVariant::NoSynch,
    );
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 55);
    for q in queries.iter() {
        let (_, bf) = data.nearest_neighbor_brute_force(q);
        let (a, _) = sims_search(&paris, q, &QueryConfig::default());
        check(a.dist_sq, bf, "ParIS-no-synch");
    }
}

#[test]
fn repeated_queries_are_deterministic_in_value() {
    // Parallel execution may vary schedules, but the answer value must be
    // bit-stable across runs (distance ties aside, the minimum is unique
    // with probability 1 on continuous data).
    let data = dataset(DatasetKind::Seismic, 66);
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &index_config());
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::Seismic, 2, 66);
    for q in queries.iter() {
        let reference = messi.search(q, &QueryConfig::default()).0;
        for _ in 0..10 {
            let again = messi.search(q, &QueryConfig::default()).0;
            assert_eq!(again.pos, reference.pos);
            assert_eq!(again.dist_sq.to_bits(), reference.dist_sq.to_bits());
        }
    }
}
