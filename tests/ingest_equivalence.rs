//! Live ingest is an execution detail, not a semantics change: a
//! [`DeltaIndex`] that absorbed appended series behind its epoch seam
//! must answer **bit-identically** to an index freshly built over the
//! grown collection, for every cell of the Objective × Metric matrix,
//! under both batch schedules, before *and* after the overlay is
//! flattened by a republish, at shard counts exercising the single-index
//! path (N = 1) and scatter-gather (N = 3).
//!
//! Approximate search participates at ε = 0, δ = 1 — the corner where
//! the paper's guarantee makes it exact search bit for bit (see
//! `sharded_equivalence.rs` for why other corners only promise the
//! bound).
//!
//! The same suite proves the durability seam: a snapshot plus a delta-
//! log replay reconstructs the in-memory state answer-for-answer, a
//! torn log tail is dropped loudly with the intact prefix recovered,
//! and queries keep running allocation-free (the warm-path discipline)
//! while a writer ingests and republishes concurrently.

use messi::prelude::*;
use messi::series::gen::{self, DatasetKind};
use messi::{DeltaIndex, IngestOptions};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 2] = [1, 3];

fn deterministic() -> QueryConfig {
    QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::default()
    }
}

/// Never republish on its own: the size trigger is out of reach and the
/// cadence trigger is disabled, so tests control the epoch explicitly.
fn manual_republish() -> IngestOptions {
    IngestOptions {
        republish_after: usize::MAX,
        max_epoch_age: None,
    }
}

/// Splits one generated collection into a base prefix and append
/// batches, so `full` itself is the bit-exact grown reference.
fn split(full: &Dataset, cuts: &[usize]) -> Vec<Dataset> {
    let len = full.series_len();
    let mut out = Vec::new();
    let mut start = 0;
    for &end in cuts {
        out.push(Dataset::from_flat(full.as_flat()[start * len..end * len].to_vec(), len).unwrap());
        start = end;
    }
    out.push(Dataset::from_flat(full.as_flat()[start * len..].to_vec(), len).unwrap());
    out
}

/// The full Objective × Metric matrix (approximate pinned at its exact
/// corner).
fn matrix(series_len: usize, range_eps_sq: f32) -> Vec<(String, QuerySpec)> {
    let params = DtwParams::paper_default(series_len);
    [
        ("exact", QuerySpec::exact()),
        ("knn", QuerySpec::knn(5)),
        ("range", QuerySpec::range(range_eps_sq)),
        ("approx(0,1)", QuerySpec::approximate(0.0, 1.0)),
    ]
    .iter()
    .flat_map(|(tag, spec)| {
        [
            (format!("{tag}/ed"), *spec),
            (format!("{tag}/dtw"), spec.with_dtw(params)),
        ]
    })
    .collect()
}

fn assert_bit_identical(tag: &str, live: &[QueryAnswer], fresh: &[QueryAnswer]) {
    assert_eq!(live.len(), fresh.len(), "{tag}: result-set size diverged");
    for (i, (a, b)) in live.iter().zip(fresh).enumerate() {
        assert_eq!(a.pos, b.pos, "{tag}[{i}]: position diverged");
        assert_eq!(
            a.dist_sq.to_bits(),
            b.dist_sq.to_bits(),
            "{tag}[{i}]: dist_sq bits diverged ({} vs {})",
            a.dist_sq,
            b.dist_sq
        );
    }
}

#[test]
fn insert_then_query_matches_fresh_build_across_the_whole_matrix() {
    // 240 base series + two append batches (7 then 5). `full` is the
    // grown collection a from-scratch build sees.
    let full = Arc::new(gen::generate(DatasetKind::RandomWalk, 252, 61));
    let parts = split(&full, &[240, 247]);
    let (base, batch1, batch2) = (&parts[0], &parts[1], &parts[2]);
    let config = IndexConfig::for_tests();
    let qconfig = deterministic();

    // Queries: generated strangers plus ingested members, so overlay
    // candidates both win and lose.
    let strangers = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 61);
    let mut queries: Vec<&[f32]> = strangers.iter().collect();
    queries.push(batch1.series(0));
    queries.push(batch2.series(batch2.len() - 1));

    for n in SHARD_COUNTS {
        let (fresh, _) = ShardedIndex::build(Arc::clone(&full), n, &config);
        let reference = ShardedExecutor::new(&fresh);

        let base_arc = Arc::new(base.clone());
        let (built, _) = ShardedIndex::build(base_arc, n, &config);
        let live = DeltaIndex::new(built, manual_republish());
        live.insert_batch(batch1).expect("ingest batch 1");
        live.insert_batch(batch2).expect("ingest batch 2");
        assert_eq!(live.num_series(), 252);
        assert_eq!(live.stats().overlay_series, 12);

        let (nn, _) = reference.run_one(queries[0], &QuerySpec::exact(), &qconfig);
        let specs = matrix(full.series_len(), nn[0].dist_sq * 4.0 + 1.0);

        // Overlay state, then the flattened epoch after republish: both
        // must be indistinguishable from the fresh build.
        for phase in ["overlay", "republished"] {
            for (tag, spec) in &specs {
                for (qi, q) in queries.iter().enumerate() {
                    let (a, _) = live.query(q, spec, &qconfig);
                    let (b, _) = reference.run_one(q, spec, &qconfig);
                    assert_bit_identical(&format!("N={n} {phase} {tag} q{qi}"), &a, &b);
                }
            }
            if phase == "overlay" {
                assert!(live.republish().expect("republish"), "overlay to flatten");
                assert_eq!(live.stats().overlay_series, 0);
            }
        }

        // Post-republish the absorbed index is a plain ShardedIndex:
        // both batch schedules run over it bit-identically too.
        let absorbed = live.index();
        let exec = ShardedExecutor::new(&absorbed);
        let spec = QuerySpec::knn(4);
        for schedule in [
            Schedule::IntraQuery,
            Schedule::InterQuery { parallelism: 2 },
        ] {
            let (batch, _) = exec.run_batch(&strangers, &spec, schedule, &qconfig);
            for (qi, a) in batch.iter().enumerate() {
                let (b, _) = reference.run_one(strangers.series(qi), &spec, &qconfig);
                assert_bit_identical(&format!("N={n} {schedule:?} q{qi}"), a, &b);
            }
        }
    }
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "messi-ingest-equivalence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn snapshot_plus_log_replay_reconstructs_the_in_memory_state() {
    let full = Arc::new(gen::generate(DatasetKind::RandomWalk, 212, 62));
    let parts = split(&full, &[200, 206]);
    let (base, batch1, batch2) = (&parts[0], &parts[1], &parts[2]);
    let base = Arc::new(base.clone());
    let config = IndexConfig::for_tests();
    let qconfig = deterministic();

    let dir = scratch_path("snapshot");
    let log = scratch_path("replay.log");
    let (built, _) = ShardedIndex::build(Arc::clone(&base), 3, &config);
    save_sharded(&built, &dir).expect("save snapshot");

    // First life: boot from the snapshot, ingest durably, remember the
    // answers the live index gives.
    let queries: Vec<&[f32]> = vec![base.series(7), batch1.series(0), batch2.series(1)];
    let spec = QuerySpec::knn(6);
    let before: Vec<Vec<QueryAnswer>> = {
        let loaded = load_sharded(&dir, Arc::clone(&base)).expect("load snapshot");
        let (live, report) =
            DeltaIndex::with_log(loaded, manual_republish(), &log).expect("fresh log");
        assert_eq!(report.batches, 0);
        live.insert_batch(batch1).expect("ingest batch 1");
        live.insert_batch(batch2).expect("ingest batch 2");
        queries
            .iter()
            .map(|q| live.query(q, &spec, &qconfig).0)
            .collect()
    };

    // Second life: same snapshot + same log. The replay must rebuild
    // the acknowledged state answer-for-answer — nothing was re-sent.
    let loaded = load_sharded(&dir, Arc::clone(&base)).expect("reload snapshot");
    let (rebooted, report) =
        DeltaIndex::with_log(loaded, manual_republish(), &log).expect("replay log");
    assert_eq!((report.batches, report.series), (2, 12));
    assert!(!report.torn);
    assert_eq!(rebooted.num_series(), 212);
    for (qi, q) in queries.iter().enumerate() {
        let (a, _) = rebooted.query(q, &spec, &qconfig);
        assert_bit_identical(&format!("replayed q{qi}"), &a, &before[qi]);
    }

    std::fs::remove_dir_all(&dir).expect("cleanup dir");
    std::fs::remove_file(&log).expect("cleanup log");
}

#[test]
fn torn_log_tail_is_dropped_loudly_and_the_prefix_recovered() {
    let full = Arc::new(gen::generate(DatasetKind::RandomWalk, 158, 63));
    let parts = split(&full, &[150, 154]);
    let (base, batch1, batch2) = (&parts[0], &parts[1], &parts[2]);
    let base = Arc::new(base.clone());
    let config = IndexConfig::for_tests();
    let qconfig = deterministic();
    let log = scratch_path("torn.log");

    let bytes_after_first = {
        let (built, _) = ShardedIndex::build(Arc::clone(&base), 1, &config);
        let (live, _) = DeltaIndex::with_log(built, manual_republish(), &log).expect("fresh log");
        live.insert_batch(batch1).expect("ingest batch 1");
        let after_first = std::fs::metadata(&log).expect("log exists").len();
        live.insert_batch(batch2).expect("ingest batch 2");
        after_first
    };

    // Crash mid-append: chop the second frame off mid-way.
    let full_len = std::fs::metadata(&log).expect("log exists").len();
    assert!(full_len > bytes_after_first);
    let torn_len = bytes_after_first + (full_len - bytes_after_first) / 2;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&log)
        .expect("open log");
    file.set_len(torn_len).expect("tear the tail");
    drop(file);

    let (built, _) = ShardedIndex::build(Arc::clone(&base), 1, &config);
    let (recovered, report) =
        DeltaIndex::with_log(built, manual_republish(), &log).expect("torn log still opens");
    assert!(report.torn, "torn tail must be reported");
    assert_eq!(
        (report.batches, report.series),
        (1, batch1.len()),
        "the intact prefix is replayed"
    );
    assert_eq!(report.dropped_bytes, torn_len - bytes_after_first);
    assert_eq!(recovered.num_series() as usize, base.len() + batch1.len());
    // The recovered series answers; the torn batch is gone (its member
    // no longer matches anything at distance zero).
    let (hit, _) = recovered.query(batch1.series(0), &QuerySpec::exact(), &qconfig);
    assert_eq!(hit[0].pos as usize, base.len());
    assert_eq!(hit[0].dist_sq, 0.0);
    let (miss, _) = recovered.query(batch2.series(0), &QuerySpec::exact(), &qconfig);
    assert!(miss[0].dist_sq > 0.0, "torn batch must not answer");
    // And the truncation is durable: the next append goes to the
    // truncated offset, so a re-open sees a clean log.
    recovered
        .insert_batch(batch2)
        .expect("re-ingest after tear");
    drop(recovered);
    let (built, _) = ShardedIndex::build(Arc::clone(&base), 1, &config);
    let (_, report) = DeltaIndex::with_log(built, manual_republish(), &log).expect("clean reopen");
    assert_eq!((report.batches, report.torn), (2, false));

    std::fs::remove_file(&log).expect("cleanup log");
}

#[test]
fn queries_stay_on_the_warm_path_while_a_writer_ingests_and_republishes() {
    // The epoch seam's contract: readers never block on (or allocate
    // because of) an in-flight ingest. After prewarm, every query's
    // alloc-event delta must stay zero across epochs — including the
    // epochs republish swaps in mid-flight, which are prewarmed before
    // the pointer store makes them visible.
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 64));
    let tail = gen::generate(DatasetKind::RandomWalk, 60, 65);
    let config = IndexConfig::for_tests();
    let qconfig = deterministic();
    let (built, _) = ShardedIndex::build(Arc::clone(&data), 2, &config);
    let live = DeltaIndex::new(
        built,
        IngestOptions {
            republish_after: 8, // several republishes over the run
            max_epoch_age: None,
        },
    );
    live.prewarm(&qconfig);

    let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 64);
    let (live_ref, tail_ref, queries_ref, qconfig_ref) = (&live, &tail, &queries, &qconfig);
    std::thread::scope(|s| {
        let writer = s.spawn(move || {
            for chunk in tail_ref.as_flat().chunks(3 * tail_ref.series_len()) {
                let batch = Dataset::from_flat(chunk.to_vec(), tail_ref.series_len()).unwrap();
                live_ref.insert_batch(&batch).expect("concurrent ingest");
            }
        });
        for reader in 0..2u64 {
            s.spawn(move || {
                for round in 0..40 {
                    let q = queries_ref.series(((reader + round) % 4) as usize);
                    let (answers, _, alloc_delta, _) =
                        live_ref.query_traced(q, &QuerySpec::exact(), qconfig_ref);
                    assert_eq!(
                        alloc_delta, 0,
                        "reader {reader} round {round}: query left the warm path \
                         during concurrent ingest"
                    );
                    assert!(answers[0].dist_sq.is_finite());
                    assert!((answers[0].pos as usize) < 460);
                }
            });
        }
        writer.join().expect("writer");
    });

    assert_eq!(live.num_series(), 460);
    let stats = live.stats();
    assert!(stats.republishes >= 1, "size trigger must have fired");
    // Quiesced: the final state still matches a fresh build bit for bit.
    let grown = Arc::new(data.concat(std::iter::once(&tail)).unwrap());
    live.republish().expect("final republish");
    let (fresh, _) = ShardedIndex::build(grown, 2, &config);
    let reference = ShardedExecutor::new(&fresh);
    for q in queries.iter() {
        let (a, _) = live.query(q, &QuerySpec::knn(3), &qconfig);
        let (b, _) = reference.run_one(q, &QuerySpec::knn(3), &qconfig);
        assert_bit_identical("quiesced", &a, &b);
    }
}
