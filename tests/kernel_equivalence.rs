//! Property-based proof that the SIMD kernels and their scalar twins
//! are *bit-identical* — the contract `crates/series/src/distance/
//! simd.rs` documents and the `--kernel` ablation relies on.
//!
//! Two layers:
//!
//! * **Kernel level** — for random lengths (including 0, 1, and
//!   non-multiple-of-8 tails), random bounds, and extreme magnitudes,
//!   every dispatcher returns the same bits under `Kernel::Simd` and
//!   `Kernel::Scalar`: squared Euclidean distance (plain and
//!   early-abandoning), LB_Keogh (plain and early-abandoning), and the
//!   batched struct-of-arrays mindist.
//! * **Query level** — a full search under forced-SIMD and
//!   forced-scalar kernels returns bit-identical answers (position and
//!   `dist_sq` bits) for every objective × metric cell. Run single-
//!   worker/single-queue so the evaluation order is deterministic and
//!   the comparison is exact, not statistical.
//!
//! On a CPU without AVX2+FMA, `Kernel::Simd` falls back to scalar and
//! every property holds trivially — so the suite is portable, and the
//! forced-scalar CI job exercises the same fallback explicitly.

// The proptest shim expands multi-test blocks recursively; three tests
// of this size overflow the default 128 limit.
#![recursion_limit = "256"]

use messi::prelude::*;
use messi::sax::convert::SaxConfig;
use messi::sax::mindist::MindistTable;
use messi::series::distance::euclidean::{ed_sq_early_abandon_with, ed_sq_with};
use messi::series::distance::lb_keogh::{
    lb_keogh_sq_early_abandon_with, lb_keogh_sq_with, Envelope,
};
use messi::series::gen::{self, DatasetKind};
use proptest::prelude::*;
use std::sync::Arc;

const SIMD: Kernel = Kernel::Simd;
const SCALAR: Kernel = Kernel::Scalar;

/// A deterministic pseudo-random series of length `n`, with the
/// magnitude scale mixed in so extreme values (overflow-to-infinity
/// squares, denormal-range products) are part of the property.
fn series(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Roughly N(0, 1)-ish via a folded uniform; exact shape is
            // irrelevant — only bit-equality of the two kernels is.
            let u = (state >> 40) as f32 / (1u64 << 24) as f32;
            (u - 0.5) * 4.0 * scale
        })
        .collect()
}

fn scale_strategy() -> impl Strategy<Value = f32> {
    (0usize..4).prop_map(|i| [1.0f32, 1.0e-20, 1.0e19, 3.5e-3][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn ed_kernels_are_bit_identical(
        shape in (0usize..300, 0u64..1_000_000),
        scale in scale_strategy(),
        bound_frac in 0usize..4,
    ) {
        let (n, seed) = shape;
        let a = series(n, seed, scale);
        let b = series(n, seed.wrapping_add(1), scale);
        let simd = ed_sq_with(SIMD, &a, &b);
        let scalar = ed_sq_with(SCALAR, &a, &b);
        prop_assert_eq!(simd.to_bits(), scalar.to_bits(), "ed n={} {} vs {}", n, simd, scalar);

        // Early abandoning at several tightnesses, including bound = 0
        // (abandons at the first stride) and a bound the sum never hits.
        let bound = [0.0f32, scalar / 2.0, scalar, f32::INFINITY][bound_frac];
        let ea_simd = ed_sq_early_abandon_with(SIMD, &a, &b, bound);
        let ea_scalar = ed_sq_early_abandon_with(SCALAR, &a, &b, bound);
        prop_assert_eq!(
            ea_simd.to_bits(), ea_scalar.to_bits(),
            "ed_ea n={} bound={} {} vs {}", n, bound, ea_simd, ea_scalar
        );
    }

    #[test]
    fn lb_keogh_kernels_are_bit_identical(
        shape in (1usize..300, 0u64..1_000_000),
        scale in scale_strategy(),
        fracs in (0usize..4, 0usize..4),
    ) {
        let (n, seed) = shape;
        let (window_frac, bound_frac) = fracs;
        let q = series(n, seed, scale);
        let c = series(n, seed.wrapping_add(7), scale);
        let window = n * window_frac / 8; // 0 ..= n/2
        let env = Envelope::new(&q, DtwParams { window });
        let simd = lb_keogh_sq_with(SIMD, &env, &c);
        let scalar = lb_keogh_sq_with(SCALAR, &env, &c);
        prop_assert_eq!(
            simd.to_bits(), scalar.to_bits(),
            "lb_keogh n={} w={} {} vs {}", n, window, simd, scalar
        );

        let bound = [0.0f32, scalar / 2.0, scalar, f32::INFINITY][bound_frac];
        let ea_simd = lb_keogh_sq_early_abandon_with(SIMD, &env, &c, bound);
        let ea_scalar = lb_keogh_sq_early_abandon_with(SCALAR, &env, &c, bound);
        prop_assert_eq!(
            ea_simd.to_bits(), ea_scalar.to_bits(),
            "lb_keogh_ea n={} bound={} {} vs {}", n, bound, ea_simd, ea_scalar
        );
    }

    #[test]
    fn soa_mindist_tail_lengths_are_bit_identical(
        seed in 0u64..1_000_000,
        segments_pick in 0usize..3,
    ) {
        // Pin every remainder length explicitly: 4–7 dispatch to the
        // 4-wide SSE tail kernel under SIMD, 1–3 stay on the scalar
        // twin in both arms. Each must match the scalar path bit for
        // bit at every lane.
        let segments = [8usize, 12, 16][segments_pick];
        let series_len = segments * 16;
        let config = SaxConfig::new(segments, series_len);
        let q = series(series_len, seed, 1.0);
        let paa = messi::series::paa::paa(&q, segments);
        let table = MindistTable::new(&paa, config);

        for tail in 1..8usize {
            let entries = 8 + tail; // one full chunk + the pinned tail
            let mut state = seed.wrapping_add(tail as u64) | 1;
            let mut cols = vec![0u8; segments * entries];
            for byte in cols.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *byte = (state >> 32) as u8;
            }
            let mut simd_out = [0.0f32; 8];
            let mut scalar_out = [0.0f32; 8];
            table.mindist_sq_soa(&cols, entries, 8, tail, true, &mut simd_out);
            table.mindist_sq_soa(&cols, entries, 8, tail, false, &mut scalar_out);
            for lane in 0..tail {
                prop_assert_eq!(
                    simd_out[lane].to_bits(), scalar_out[lane].to_bits(),
                    "soa tail segs={} tail={} lane={}", segments, tail, lane
                );
            }
        }
    }

    #[test]
    fn soa_mindist_batch_is_bit_identical(
        shape in (1usize..40, 0u64..1_000_000),
        segments_pick in 0usize..3,
    ) {
        let (entries, seed) = shape;
        let segments = [8usize, 12, 16][segments_pick];
        let series_len = segments * 16;
        let config = SaxConfig::new(segments, series_len);
        let q = series(series_len, seed, 1.0);
        let paa = messi::series::paa::paa(&q, segments);
        let table = MindistTable::new(&paa, config);

        // Random symbol columns for `entries` entries.
        let mut state = seed | 1;
        let mut cols = vec![0u8; segments * entries];
        for byte in cols.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *byte = (state >> 32) as u8;
        }

        let mut simd_out = [0.0f32; 8];
        let mut scalar_out = [0.0f32; 8];
        let mut base = 0;
        while base < entries {
            let len = (entries - base).min(8);
            table.mindist_sq_soa(&cols, entries, base, len, true, &mut simd_out);
            table.mindist_sq_soa(&cols, entries, base, len, false, &mut scalar_out);
            for lane in 0..len {
                prop_assert_eq!(
                    simd_out[lane].to_bits(), scalar_out[lane].to_bits(),
                    "soa mindist segs={} entries={} base={} lane={}",
                    segments, entries, base, lane
                );
            }
            base += len;
        }
    }
}

/// Forced-SIMD and forced-scalar full queries, compared bit-for-bit.
/// Single worker + single queue: the leaf visit order, the bound
/// evolution, and hence every early-abandon decision are deterministic,
/// so bit-identical kernels must produce bit-identical answers.
fn kernel_forced(kernel: Kernel) -> QueryConfig {
    QueryConfig {
        num_workers: 1,
        num_queues: 1,
        kernel,
        ..QueryConfig::default()
    }
}

fn assert_same_answer(tag: &str, a: (u64, f32), b: (u64, f32)) {
    assert_eq!(a.0, b.0, "{tag}: position diverged");
    assert_eq!(
        a.1.to_bits(),
        b.1.to_bits(),
        "{tag}: dist_sq bits diverged ({} vs {})",
        a.1,
        b.1
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn full_queries_are_bit_identical_across_kernels(
        shape in (150usize..400, 0u64..1_000_000),
    ) {
        let (count, seed) = shape;
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, seed);
        let params = DtwParams::paper_default(data.series_len());
        let simd = kernel_forced(Kernel::Simd);
        let scalar = kernel_forced(Kernel::Scalar);

        for q in queries.iter() {
            // Exact 1-NN, both metrics.
            let (a, _) = index.search(q, &simd);
            let (b, _) = index.search(q, &scalar);
            assert_same_answer("exact/ed", (a.pos, a.dist_sq), (b.pos, b.dist_sq));
            let (a, _) = index.search_dtw(q, params, &simd);
            let (b, _) = index.search_dtw(q, params, &scalar);
            assert_same_answer("exact/dtw", (a.pos, a.dist_sq), (b.pos, b.dist_sq));

            // k-NN, both metrics.
            let (ka, _) = index.search_knn(q, 5, &simd);
            let (kb, _) = index.search_knn(q, 5, &scalar);
            prop_assert_eq!(ka.len(), kb.len());
            for (x, y) in ka.iter().zip(&kb) {
                assert_same_answer("knn/ed", (x.pos, x.dist_sq), (y.pos, y.dist_sq));
            }
            let (ka, _) = index.search_knn_dtw(q, 5, params, &simd);
            let (kb, _) = index.search_knn_dtw(q, 5, params, &scalar);
            prop_assert_eq!(ka.len(), kb.len());
            for (x, y) in ka.iter().zip(&kb) {
                assert_same_answer("knn/dtw", (x.pos, x.dist_sq), (y.pos, y.dist_sq));
            }

            // ε-range, both metrics (radius from the exact answer so the
            // result set is non-trivial).
            let (nn, _) = index.search(q, &simd);
            let eps = nn.dist_sq * 4.0 + 1.0;
            let (ra, _) = index.search_range(q, eps, &simd);
            let (rb, _) = index.search_range(q, eps, &scalar);
            prop_assert_eq!(ra.len(), rb.len(), "range/ed set size");
            for (x, y) in ra.iter().zip(&rb) {
                assert_same_answer("range/ed", (x.pos, x.dist_sq), (y.pos, y.dist_sq));
            }
            let (ra, _) = index.search_range_dtw(q, eps, params, &simd);
            let (rb, _) = index.search_range_dtw(q, eps, params, &scalar);
            prop_assert_eq!(ra.len(), rb.len(), "range/dtw set size");
            for (x, y) in ra.iter().zip(&rb) {
                assert_same_answer("range/dtw", (x.pos, x.dist_sq), (y.pos, y.dist_sq));
            }

            // δ-ε-approximate, both metrics: ng corner (δ=0), the
            // deterministic guarantee (δ=1), and a budgeted middle
            // (δ=0.5 — the budget is leaf-count-derived, so with one
            // worker the stop point is deterministic too).
            for delta in [0.0f32, 0.5, 1.0] {
                let (a, _) = index.search_approximate_bounded(q, 0.1, delta, &simd);
                let (b, _) = index.search_approximate_bounded(q, 0.1, delta, &scalar);
                assert_same_answer("approx/ed", (a.pos, a.dist_sq), (b.pos, b.dist_sq));
                let (a, _) = index.search_approximate_bounded_dtw(q, 0.1, delta, params, &simd);
                let (b, _) = index.search_approximate_bounded_dtw(q, 0.1, delta, params, &scalar);
                assert_same_answer("approx/dtw", (a.pos, a.dist_sq), (b.pos, b.dist_sq));
            }

            // The home-leaf-only approximate entry point.
            let a = index.search_approximate(q, Kernel::Simd);
            let b = index.search_approximate(q, Kernel::Scalar);
            assert_same_answer("approx/ng", (a.pos, a.dist_sq), (b.pos, b.dist_sq));
        }
    }
}
