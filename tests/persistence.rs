//! Property-based equivalence of snapshot persistence.
//!
//! A saved-then-loaded index must be indistinguishable from the
//! in-memory index it came from: structurally identical (same touched
//! keys, leaves, heights, per-leaf entries), structurally *valid*
//! (`validate` clean), and — the property that matters to a serving
//! frontend — **bit-identical in its answers and pruning statistics**
//! for every `QuerySpec` (objective × metric) under both batch
//! schedules. The corrupted-file cases pin down the failure modes: a
//! flipped byte, a truncation, a bumped version, or the wrong dataset
//! must all be loud errors, never a quietly wrong index.

use messi::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// One randomly drawn scenario: a dataset and a full query configuration.
#[derive(Debug, Clone)]
struct Scenario {
    count: usize,
    seed: u64,
    num_workers: usize,
    num_queues: usize,
    k: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        30usize..200,
        0u64..1_000_000,
        1usize..=6,
        1usize..=4,
        1usize..=6,
    )
        .prop_map(|(count, seed, num_workers, num_queues, k)| Scenario {
            count,
            seed,
            num_workers,
            num_queues,
            k,
        })
}

fn build_index(s: &Scenario) -> (Arc<Dataset>, MessiIndex) {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        s.count,
        s.seed,
    ));
    let config = IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 32,
        leaf_capacity: 16,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    (data, index)
}

fn tmp(name: &str, s: &Scenario) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "messi-persistence-prop-{}-{name}-{}-{}",
        std::process::id(),
        s.count,
        s.seed
    ));
    p
}

/// Every cell of the Objective × Metric matrix with non-trivial
/// parameters for this scenario.
fn matrix_specs(data: &Dataset, index: &MessiIndex, s: &Scenario) -> Vec<QuerySpec> {
    let k = s.k.min(data.len());
    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 1, s.seed);
    let (knn, _) = index.search_knn(queries.series(0), k, &QueryConfig::for_tests());
    let epsilon_sq = knn.last().expect("k >= 1").dist_sq * 1.5 + 1e-3;
    let params = DtwParams::paper_default(data.series_len());
    vec![
        QuerySpec::exact(),
        QuerySpec::knn(k),
        QuerySpec::range(epsilon_sq),
        QuerySpec::exact().with_dtw(params),
        QuerySpec::knn(k).with_dtw(params),
        QuerySpec::range(epsilon_sq).with_dtw(params),
        // δ-ε-approximate: the budget derives from the leaf count, which
        // the snapshot must reproduce exactly — a loaded index answers
        // (and stops early) bit-identically to the in-memory one.
        QuerySpec::approximate(0.2, 0.5),
        QuerySpec::approximate(0.2, 0.5).with_dtw(params),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_load_roundtrip_is_bit_identical(s in scenario()) {
        let (data, index) = build_index(&s);
        let path = tmp("roundtrip", &s);
        save_index(&index, &path).expect("save");
        let loaded = load_index(&path, Arc::clone(&data)).expect("load");
        std::fs::remove_file(&path).ok();

        // Structure is preserved exactly.
        prop_assert_eq!(loaded.touched_keys(), index.touched_keys());
        prop_assert_eq!(loaded.num_leaves(), index.num_leaves());
        prop_assert_eq!(loaded.max_height(), index.max_height());
        prop_assert_eq!(loaded.num_entries(), index.num_entries());
        prop_assert_eq!(loaded.scales(), index.scales());
        prop_assert!(messi::index::validate::validate(&loaded).is_empty());
        for &key in loaded.touched_keys() {
            let mut a = Vec::new();
            let mut b = Vec::new();
            index
                .root(key)
                .unwrap()
                .for_each_leaf(&mut |l| a.extend(l.entries.iter().map(|e| e.pos)));
            loaded
                .root(key)
                .unwrap()
                .for_each_leaf(&mut |l| b.extend(l.entries.iter().map(|e| e.pos)));
            prop_assert_eq!(a, b, "leaf contents for key {} changed order", key);
        }

        // Answers and stats are bit-identical for every QuerySpec ×
        // schedule (the statistics depend on the tree shape, so this is
        // the strongest observable equivalence short of memory equality).
        let queries =
            messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 3, s.seed ^ 7);
        let config = QueryConfig {
            num_workers: s.num_workers,
            num_queues: s.num_queues,
            ..QueryConfig::for_tests()
        };
        let exec_mem = index.executor();
        let exec_snap = loaded.executor();
        for spec in matrix_specs(&data, &index, &s) {
            for schedule in [
                Schedule::IntraQuery,
                Schedule::InterQuery { parallelism: s.num_workers },
            ] {
                let (a, agg_a) = exec_mem.run_batch(&queries, &spec, schedule, &config);
                let (b, agg_b) = exec_snap.run_batch(&queries, &spec, schedule, &config);
                // Deterministic runs (each query on one worker: every
                // inter-query batch, and intra with Ns = 1) must be
                // bit-identical in answers *and* pruning counters — the
                // strongest observable equivalence short of memory
                // equality, since the counters depend on the tree shape.
                let single_worker =
                    s.num_workers == 1 || !matches!(schedule, Schedule::IntraQuery);
                if single_worker {
                    prop_assert_eq!(
                        &a, &b,
                        "answers diverged: {:?} {:?} ({:?})",
                        spec, schedule, s
                    );
                    prop_assert_eq!(
                        agg_a.lb_distance_calcs, agg_b.lb_distance_calcs,
                        "lb calcs diverged: {:?} {:?}", spec, schedule
                    );
                    prop_assert_eq!(
                        agg_a.real_distance_calcs, agg_b.real_distance_calcs,
                        "real calcs diverged: {:?} {:?}", spec, schedule
                    );
                    prop_assert_eq!(
                        agg_a.budget_stops, agg_b.budget_stops,
                        "δ budget stops diverged: {:?} {:?}", spec, schedule
                    );
                    prop_assert_eq!(
                        agg_a.approx_inflation_prunes, agg_b.approx_inflation_prunes,
                        "ε inflation prunes diverged: {:?} {:?}", spec, schedule
                    );
                } else {
                    // Multi-worker intra runs race the shared bound, so
                    // exact distance ties may resolve to different
                    // positions; distances themselves must agree — except
                    // for relaxed approximate specs (ε > 0 or δ < 1),
                    // whose *answer* legitimately depends on the race
                    // (the inflated bound and the visit budget make the
                    // outcome order-sensitive), on the same index, loaded
                    // or not. Their bit-identity is proven by the
                    // deterministic runs above.
                    let relaxed = matches!(
                        spec.objective,
                        Objective::Approx { epsilon, delta } if epsilon > 0.0 || delta < 1.0
                    );
                    prop_assert_eq!(a.len(), b.len());
                    for (qa, qb) in a.iter().zip(&b) {
                        prop_assert_eq!(qa.len(), qb.len(), "{:?} {:?}", spec, schedule);
                        if relaxed {
                            continue;
                        }
                        for (x, y) in qa.iter().zip(qb) {
                            prop_assert_eq!(
                                x.dist_sq.to_bits(), y.dist_sq.to_bits(),
                                "distance diverged: {:?} {:?}", spec, schedule
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn corruption_and_mismatch_are_loud(s in scenario()) {
        let (data, index) = build_index(&s);
        let path = tmp("corrupt", &s);
        save_index(&index, &path).expect("save");
        let original = std::fs::read(&path).expect("read back");

        // Flip a byte somewhere in the payload: checksum must catch it.
        let mut flipped = original.clone();
        let mid = 20 + (flipped.len() - 28) / 2;
        flipped[mid] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(matches!(
            load_index(&path, Arc::clone(&data)),
            Err(PersistError::Corrupt(_))
        ));

        // Truncate the tail: the length header must catch it.
        let mut short = original.clone();
        short.truncate(short.len().saturating_sub(1 + (s.seed as usize % 16)));
        std::fs::write(&path, &short).unwrap();
        prop_assert!(matches!(
            load_index(&path, Arc::clone(&data)),
            Err(PersistError::Corrupt(_))
        ));

        // Bump the version: a dedicated error, checked before content.
        let mut versioned = original.clone();
        versioned[8] = versioned[8].wrapping_add(1);
        std::fs::write(&path, &versioned).unwrap();
        prop_assert!(matches!(
            load_index(&path, Arc::clone(&data)),
            Err(PersistError::Version { .. })
        ));

        // Pair the pristine snapshot with a different dataset: mismatch.
        std::fs::write(&path, &original).unwrap();
        let other = Arc::new(messi::series::gen::generate(
            DatasetKind::RandomWalk,
            s.count,
            s.seed ^ 0xDEAD,
        ));
        prop_assert!(matches!(
            load_index(&path, other),
            Err(PersistError::DatasetMismatch(_))
        ));

        // And the pristine snapshot with the right dataset still loads.
        prop_assert!(load_index(&path, data).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
