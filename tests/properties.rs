//! Property-based tests (proptest) over the core invariants.
//!
//! These cover the mathematical contracts the search algorithms rely on,
//! with *arbitrary* inputs rather than generator outputs: lower bounds
//! must never exceed true distances, summaries must be consistent under
//! refinement, the index must be complete and exact for any data —
//! including adversarial shapes (constants, duplicates, huge/tiny
//! values).

use messi::prelude::*;
use messi::sax::convert::{sax_word, SaxConfig};
use messi::sax::mindist::{mindist_sq_leaf_scalar, mindist_sq_node, segment_scales, MindistTable};
use messi::sax::root_key::{node_word_for_root_key, root_key};
use messi::series::distance::dtw::{dtw_sq, DtwParams};
use messi::series::distance::euclidean::{ed_sq_early_abandon, ed_sq_scalar};
use messi::series::distance::lb_keogh::{lb_keogh_sq, Envelope};
use messi::series::paa::paa;
use messi::series::znorm::znormalized;
use proptest::prelude::*;
use std::sync::Arc;

/// A z-normalized series of length `len` built from arbitrary finite floats.
fn znorm_series(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1e3f32..1e3f32, len).prop_map(|v| znormalized(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mindist_is_a_lower_bound_for_any_pair(
        q in znorm_series(64),
        c in znorm_series(64),
    ) {
        let config = SaxConfig::new(8, 64);
        let scales = segment_scales(config);
        let qp = paa(&q, 8);
        let w = sax_word(&c, config);
        let true_d = ed_sq_scalar(&q, &c);
        let lb_branchy = mindist_sq_leaf_scalar(&qp, &scales, &w);
        let table = MindistTable::new(&qp, config);
        let lb_table = table.mindist_sq(&w);
        prop_assert!(lb_branchy <= true_d + 1e-2 * true_d.max(1.0));
        prop_assert!((lb_branchy - lb_table).abs() <= 1e-3 * lb_branchy.max(1.0));
        // Node word (root level) is weaker than the leaf bound.
        let node = node_word_for_root_key(root_key(&w, 8), 8);
        let lb_node = mindist_sq_node(&qp, &scales, &node);
        prop_assert!(lb_node <= lb_branchy + 1e-3 * lb_branchy.max(1.0));
    }

    #[test]
    fn early_abandon_is_exact_below_bound_for_any_pair(
        a in znorm_series(100),
        b in znorm_series(100),
    ) {
        let exact = ed_sq_scalar(&a, &b);
        let d = ed_sq_early_abandon(&a, &b, exact * 2.0 + 1.0);
        prop_assert!((d - exact).abs() <= 1e-3 * exact.max(1.0));
        // With a tight bound, the result must cross the bound.
        if exact > 0.0 {
            let d = ed_sq_early_abandon(&a, &b, exact / 2.0);
            prop_assert!(d >= exact / 2.0);
        }
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw_for_any_pair(
        q in znorm_series(64),
        c in znorm_series(64),
        window in 0usize..16,
    ) {
        let params = DtwParams { window };
        let env = Envelope::new(&q, params);
        let lb = lb_keogh_sq(&env, &c);
        let d = dtw_sq(&q, &c, params);
        prop_assert!(lb <= d + 1e-2 * d.max(1.0), "lb={lb} dtw={d}");
        // DTW never exceeds squared ED (identity alignment admissible).
        prop_assert!(d <= ed_sq_scalar(&q, &c) + 1e-2);
    }

    #[test]
    fn refinement_never_weakens_bounds(
        q in znorm_series(32),
        c in znorm_series(32),
        segment in 0usize..4,
    ) {
        let config = SaxConfig::new(4, 32);
        let scales = segment_scales(config);
        let qp = paa(&q, 4);
        let w = sax_word(&c, config);
        let mut node = node_word_for_root_key(root_key(&w, 4), 4);
        let mut last = mindist_sq_node(&qp, &scales, &node);
        for _ in 1..8 {
            let (zero, one) = node.refine(segment);
            node = if one.contains(&w, 4) { one } else { zero };
            prop_assert!(node.contains(&w, 4));
            let lb = mindist_sq_node(&qp, &scales, &node);
            prop_assert!(lb >= last - 1e-4 * last.max(1.0));
            last = lb;
        }
    }
}

proptest! {
    // Index builds are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn index_is_complete_and_exact_for_arbitrary_data(
        flat in proptest::collection::vec(-100f32..100f32, 32 * 40..32 * 120),
        leaf_capacity in 2usize..40,
        query in znorm_series(32),
    ) {
        let n = flat.len() / 32 * 32;
        let mut data = Dataset::from_flat(flat[..n].to_vec(), 32).unwrap();
        // Z-normalize each member as the index contract requires.
        let normalized: Vec<Vec<f32>> = data.iter().map(znormalized).collect();
        data = Dataset::from_series(normalized).unwrap();
        let data = Arc::new(data);
        let config = IndexConfig {
            segments: 8,
            num_workers: 3,
            chunk_size: 7,
            leaf_capacity,
            initial_buffer_capacity: 2,
            variant: messi::index::BuildVariant::Buffered,
        };
        let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
        // Structural invariants.
        let errors = messi::index::validate::validate(&index);
        prop_assert!(errors.is_empty(), "{errors:?}");
        // Exactness.
        let (ans, _) = index.search(&query, &QueryConfig {
            num_workers: 3,
            num_queues: 2,
            ..QueryConfig::default()
        });
        let (_, bf) = data.nearest_neighbor_brute_force(&query);
        prop_assert!(
            (ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0),
            "{} vs {bf}", ans.dist_sq
        );
    }

    #[test]
    fn knn_is_sorted_complete_and_duplicate_free(
        seed in 0u64..1000,
        k in 1usize..12,
    ) {
        let data = Arc::new(messi::series::gen::generate(DatasetKind::RandomWalk, 120, seed));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig {
            segments: 8,
            num_workers: 3,
            chunk_size: 16,
            leaf_capacity: 16,
            initial_buffer_capacity: 5,
            variant: messi::index::BuildVariant::Buffered,
        });
        let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 1, seed);
        let q = queries.series(0);
        let (answers, _) = messi::index::knn::exact_knn(&index, q, k, &QueryConfig {
            num_workers: 3,
            num_queues: 2,
            ..QueryConfig::default()
        });
        prop_assert_eq!(answers.len(), k.min(120));
        for w in answers.windows(2) {
            prop_assert!(w[0].dist_sq <= w[1].dist_sq + 1e-6);
        }
        let mut pos: Vec<u64> = answers.iter().map(|a| a.pos).collect();
        pos.sort_unstable();
        pos.dedup();
        prop_assert_eq!(pos.len(), answers.len());
        // k-th distance matches brute force.
        let mut all: Vec<f32> = data.iter().map(|s| ed_sq_scalar(q, s)).collect();
        all.sort_by(f32::total_cmp);
        let kth = all[answers.len() - 1];
        let got = answers.last().unwrap().dist_sq;
        prop_assert!((got - kth).abs() <= 1e-3 * kth.max(1.0), "{got} vs {kth}");
    }
}

#[test]
fn degenerate_dataset_of_identical_series_is_searchable() {
    // All series identical ⇒ one giant unsplittable leaf.
    let one = znormalized(&(0..64).map(|i| (i as f32 * 0.2).sin()).collect::<Vec<_>>());
    let data = Arc::new(Dataset::from_series(vec![one.clone(); 200]).unwrap());
    let config = IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 16,
        leaf_capacity: 8,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, stats) = MessiIndex::build(Arc::clone(&data), &config);
    assert_eq!(stats.num_leaves, 1, "identical summaries cannot split");
    let errors = messi::index::validate::validate(&index);
    assert!(errors.is_empty(), "{errors:?}");
    let (ans, _) = index.search(&one, &QueryConfig::default());
    assert_eq!(ans.dist_sq, 0.0);
}

#[test]
fn constant_series_dataset_is_searchable() {
    // Constant series z-normalize to all-zero; every summary is identical.
    let data = Arc::new(
        Dataset::from_series((0..50).map(|i| vec![i as f32; 64]).collect::<Vec<_>>()).unwrap(),
    );
    let normalized: Vec<Vec<f32>> = data.iter().map(znormalized).collect();
    let data = Arc::new(Dataset::from_series(normalized).unwrap());
    let config = IndexConfig {
        segments: 8,
        num_workers: 2,
        chunk_size: 8,
        leaf_capacity: 4,
        initial_buffer_capacity: 1,
        variant: messi::index::BuildVariant::Buffered,
    };
    let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
    let q = vec![0.0f32; 64];
    let (ans, _) = index.search(&q, &QueryConfig::default());
    assert_eq!(ans.dist_sq, 0.0);
}
