//! Property-based proof that leaf-run batching is an execution detail,
//! not a semantics change: queue-coalesced run scans must answer
//! **bit-identically** (positions and `dist_sq` bits) to per-leaf scans
//! for every cell of the Objective × Metric matrix, under both batch
//! schedules, both forced kernels, and shard counts {1, 3} — on trees
//! whose leaves are far smaller than the run target, so runs genuinely
//! span many leaves and the property is not vacuous.
//!
//! The δ-budget corner gets its own test: a finite leaf-visit budget
//! vetoes coalescing (`SearchObjective::coalescing_allowed`), so the
//! budget accounting — and on the deterministic single-shard path,
//! every pruning counter — must be *identical* whether run batching is
//! requested or not. (The multi-shard scatter races on the shared
//! cross-shard bound, which makes budgeted counters timing-dependent
//! independently of batching; those shard counts run as smoke only.)
//!
//! Comparisons run single-worker/single-queue so the evaluation order
//! is deterministic and the check is exact, not statistical. When CI
//! sets `MESSI_NO_RUN_BATCH=1`, `RunBatchPolicy::Auto` collapses to the
//! per-leaf path and the suite still proves that escape hatch harmless.

use messi::index::RunBatchPolicy;
use messi::prelude::*;
use messi::series::gen::{self, DatasetKind};
use proptest::prelude::*;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 2] = [1, 3];

/// Tiny leaves (capacity 8 ≪ the 64-entry run target) force multi-leaf
/// runs, so coalescing actually happens under `RunBatchPolicy::Auto`.
fn small_leaf_config() -> IndexConfig {
    IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 64,
        leaf_capacity: 8,
        initial_buffer_capacity: 5,
        variant: messi::index::BuildVariant::Buffered,
    }
}

fn query_config(run_batch: RunBatchPolicy, kernel: Kernel) -> QueryConfig {
    QueryConfig {
        num_workers: 1,
        num_queues: 1,
        kernel,
        run_batch,
        ..QueryConfig::default()
    }
}

/// The full Objective × Metric matrix (approximate pinned at its exact
/// δ = 1 corner, where coalescing stays enabled; finite budgets are
/// covered separately below).
fn matrix(series_len: usize, range_eps_sq: f32) -> Vec<(&'static str, QuerySpec)> {
    let params = DtwParams::paper_default(series_len);
    [
        ("exact", QuerySpec::exact()),
        ("knn", QuerySpec::knn(5)),
        ("range", QuerySpec::range(range_eps_sq)),
        ("approx(0,1)", QuerySpec::approximate(0.0, 1.0)),
    ]
    .iter()
    .flat_map(|(tag, spec)| [(*tag, *spec), (*tag, spec.with_dtw(params))])
    .collect()
}

fn assert_bit_identical(tag: &str, batched: &[QueryAnswer], per_leaf: &[QueryAnswer]) {
    assert_eq!(batched.len(), per_leaf.len(), "{tag}: result-set size");
    for (i, (a, b)) in batched.iter().zip(per_leaf).enumerate() {
        assert_eq!(a.pos, b.pos, "{tag}[{i}]: position diverged");
        assert_eq!(
            a.dist_sq.to_bits(),
            b.dist_sq.to_bits(),
            "{tag}[{i}]: dist_sq bits diverged ({} vs {})",
            a.dist_sq,
            b.dist_sq
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn run_batched_scans_are_bit_identical_to_per_leaf_scans(
        shape in (300usize..550, 0u64..1_000_000),
    ) {
        let (count, seed) = shape;
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        let config = small_leaf_config();
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, seed);

        for shards in SHARD_COUNTS {
            let (index, _) = ShardedIndex::build(Arc::clone(&data), shards, &config);
            // Vacuousness guard: the trees must actually contain
            // multi-leaf runs for batching to coalesce.
            prop_assert!(
                index.shards().iter().any(|s| s.run_shapes().iter().any(|r| r.0 > 1)),
                "test tree has no multi-leaf runs — the property would be vacuous"
            );
            let exec = ShardedExecutor::new(&index);

            // Radius from the exact answer so range sets are non-trivial.
            let (nn, _) = exec.run_one(
                queries.series(0),
                &QuerySpec::exact(),
                &query_config(RunBatchPolicy::Auto, Kernel::Auto),
            );
            let eps_sq = nn[0].dist_sq * 4.0 + 1.0;

            for (tag, spec) in &matrix(data.series_len(), eps_sq) {
                for kernel in [Kernel::Scalar, Kernel::Simd] {
                    let batched = query_config(RunBatchPolicy::Auto, kernel);
                    let per_leaf = query_config(RunBatchPolicy::PerLeaf, kernel);
                    for q in queries.iter() {
                        let (a, _) = exec.run_one(q, spec, &batched);
                        let (b, _) = exec.run_one(q, spec, &per_leaf);
                        assert_bit_identical(
                            &format!("N={shards} {tag} {kernel:?} run_one"),
                            &a,
                            &b,
                        );
                    }
                    for schedule in [
                        Schedule::IntraQuery,
                        Schedule::InterQuery { parallelism: 2 },
                    ] {
                        let (a, _) = exec.run_batch(&queries, spec, schedule, &batched);
                        let (b, _) = exec.run_batch(&queries, spec, schedule, &per_leaf);
                        for (qi, (ans_a, ans_b)) in a.iter().zip(&b).enumerate() {
                            assert_bit_identical(
                                &format!("N={shards} {tag} {kernel:?} {schedule:?} q{qi}"),
                                ans_a,
                                ans_b,
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn finite_delta_budgets_account_identically_under_run_batching(
        shape in (300usize..500, 0u64..1_000_000),
        delta_pick in 0usize..3,
    ) {
        // A finite δ budget charges admission per leaf; coalescing must
        // not change what gets charged. The engine guarantees this by
        // vetoing coalescing for budgeted objectives — so with one
        // worker, *every* counter (not just the answers) is identical
        // whether run batching was requested or not.
        let (count, seed) = shape;
        let delta = [0.1f32, 0.5, 0.9][delta_pick];
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        let config = small_leaf_config();
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, seed);

        for shards in SHARD_COUNTS {
            let (index, _) = ShardedIndex::build(Arc::clone(&data), shards, &config);
            let exec = ShardedExecutor::new(&index);
            let spec = QuerySpec::approximate(0.1, delta);
            let dtw_spec = spec.with_dtw(DtwParams::paper_default(data.series_len()));
            for spec in [spec, dtw_spec] {
                for q in queries.iter() {
                    let batched = query_config(RunBatchPolicy::Auto, Kernel::Auto);
                    let per_leaf = query_config(RunBatchPolicy::PerLeaf, Kernel::Auto);
                    let (a, sa) = exec.run_one(q, &spec, &batched);
                    let (b, sb) = exec.run_one(q, &spec, &per_leaf);
                    prop_assert_eq!(a.len(), b.len(),
                        "N={} δ={}: result-set size diverged", shards, delta);
                    if shards > 1 {
                        // The multi-shard scatter races on the shared
                        // cross-shard bound, so a budgeted query's leaf
                        // charges — and hence its counters and answer —
                        // are timing-dependent run to run, with or
                        // without batching. Only the solo path below is
                        // deterministic enough for exact accounting.
                        continue;
                    }
                    assert_bit_identical(&format!("N={shards} δ={delta} budget"), &a, &b);
                    prop_assert_eq!(sa.lb_distance_calcs, sb.lb_distance_calcs,
                        "δ={}: lb calcs diverged", delta);
                    prop_assert_eq!(sa.real_distance_calcs, sb.real_distance_calcs,
                        "δ={}: real calcs diverged", delta);
                    prop_assert_eq!(sa.nodes_inserted, sb.nodes_inserted,
                        "δ={}: insert accounting diverged", delta);
                    prop_assert_eq!(sa.nodes_popped, sb.nodes_popped,
                        "δ={}: pop accounting diverged", delta);
                    prop_assert_eq!(sa.stop_reason, sb.stop_reason,
                        "δ={}: stop reason diverged", delta);
                }
            }
        }
    }
}

#[test]
fn per_leaf_counters_survive_coalescing() {
    // `nodes_inserted` counts *member leaves*, not queued runs — the
    // counter the paper's Fig. 17 analysis reads must not shrink just
    // because several leaves ride one queue entry.
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 7));
    let (index, _) = MessiIndex::build(Arc::clone(&data), &small_leaf_config());
    let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 7);
    for q in queries.iter() {
        let (_, sa) = index.search(q, &query_config(RunBatchPolicy::Auto, Kernel::Auto));
        let (_, sb) = index.search(q, &query_config(RunBatchPolicy::PerLeaf, Kernel::Auto));
        assert_eq!(
            sa.nodes_inserted, sb.nodes_inserted,
            "inserted-leaf accounting must not change when leaves coalesce"
        );
    }
}
