//! End-to-end daemon tests: a real [`IndexServer`] on an ephemeral
//! loopback port, exercised through the real [`serve::Client`] — sockets,
//! HTTP framing, keep-alive, admission, readiness, and graceful drain all
//! in one process.
//!
//! The CI `daemon-smoke` job repeats this flow against a separate `messi
//! serve` *process* (SIGTERM included); this suite keeps the same
//! guarantees in `cargo test` where a debugger can reach them.

use messi::index::serve::{self, Client, IndexServer, ServeConfig, ServeSummary, SmokeConfig};
use messi::prelude::*;
use messi::{DeltaIndex, IngestOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The daemon serves a sharded index (2 shards here) behind a live
/// [`DeltaIndex`], so these tests cover the scatter-gather and the
/// epoch-seam paths end to end; `ShardedIndex::from_single` deployments
/// go through the same code with the scatter skipped.
fn build_index(count: usize, seed: u64) -> (Arc<Dataset>, DeltaIndex) {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        count,
        seed,
    ));
    let index = build_sharded(&data);
    (data, DeltaIndex::new(index, IngestOptions::default()))
}

fn build_sharded(data: &Arc<Dataset>) -> ShardedIndex {
    let config = IndexConfig {
        segments: 8,
        num_workers: 4,
        chunk_size: 64,
        leaf_capacity: 32,
        ..IndexConfig::default()
    };
    ShardedIndex::build(Arc::clone(data), 2, &config).0
}

/// Boots a daemon on an ephemeral port and runs `f` against it; shuts
/// down afterwards and returns the serve summary.
fn with_daemon<T>(
    config: ServeConfig,
    live: &DeltaIndex,
    f: impl FnOnce(&str) -> T,
) -> (T, ServeSummary) {
    let server = IndexServer::bind("127.0.0.1:0", config).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = AtomicBool::new(false);
    let (out, summary) = std::thread::scope(|s| {
        let daemon = s.spawn(|| server.serve(live, &shutdown).expect("serve"));
        assert!(
            serve::wait_ready(&addr, Duration::from_secs(30)),
            "daemon never became ready"
        );
        let out = f(&addr);
        shutdown.store(true, Ordering::SeqCst);
        (out, daemon.join().expect("daemon thread"))
    });
    (out, summary)
}

fn body_for(objective_fields: &str, series: &[f32]) -> Vec<u8> {
    let vals: Vec<String> = series.iter().map(|x| format!("{x}")).collect();
    format!("{{{objective_fields}\"series\":[{}]}}", vals.join(",")).into_bytes()
}

fn parse_json(body: &[u8]) -> messi::index::serve::json::Json {
    messi::index::serve::json::Json::parse(std::str::from_utf8(body).expect("utf-8 body"))
        .expect("valid JSON body")
}

#[test]
fn daemon_answers_every_objective_over_real_sockets() {
    let (data, index) = build_index(400, 21);
    let q = data.series(3).to_vec();
    let (_, summary) = with_daemon(
        ServeConfig {
            threads: 3,
            admission: 8,
            query_workers: 1,
            collect_breakdown: true,
            ..ServeConfig::default()
        },
        &index,
        |addr| {
            let mut client = Client::connect(addr).expect("connect");

            // Exact 1-NN of a dataset member is the member itself.
            let resp = client
                .request("POST", "/query", &body_for("", &q))
                .expect("exact");
            assert_eq!(
                resp.status,
                200,
                "{:?}",
                String::from_utf8_lossy(&resp.body)
            );
            let doc = parse_json(&resp.body);
            let answers = doc.get("answers").unwrap().as_arr().unwrap();
            assert_eq!(answers[0].get("pos").unwrap().as_f64(), Some(3.0));

            // k-NN over the same keep-alive connection.
            let resp = client
                .request(
                    "POST",
                    "/query",
                    &body_for("\"objective\":\"knn\",\"k\":5,", &q),
                )
                .expect("knn");
            let doc = parse_json(&resp.body);
            assert_eq!(doc.get("answers").unwrap().as_arr().unwrap().len(), 5);

            // Range search with a radius that must at least catch q itself.
            let resp = client
                .request(
                    "POST",
                    "/query",
                    &body_for("\"objective\":\"range\",\"epsilon\":5.0,", &q),
                )
                .expect("range");
            let doc = parse_json(&resp.body);
            assert!(!doc.get("answers").unwrap().as_arr().unwrap().is_empty());

            // Approximate with explicit ε/δ, then DTW exact.
            let resp = client
                .request(
                    "POST",
                    "/query",
                    &body_for(
                        "\"objective\":\"approx\",\"epsilon\":0.1,\"delta\":0.5,",
                        &q,
                    ),
                )
                .expect("approx");
            assert_eq!(resp.status, 200);
            let resp = client
                .request("POST", "/query", &body_for("\"metric\":\"dtw\",", &q))
                .expect("dtw");
            let doc = parse_json(&resp.body);
            assert_eq!(
                doc.get("answers").unwrap().as_arr().unwrap()[0]
                    .get("pos")
                    .unwrap()
                    .as_f64(),
                Some(3.0),
                "DTW 1-NN of a member is the member"
            );
        },
    );
    assert_eq!(summary.served, 5);
    assert_eq!(summary.failures, 0);
    assert_eq!(summary.shed, 0);
    assert!(summary.aggregate.real_distance_calcs > 0);
}

#[test]
fn metrics_and_health_reflect_daemon_state() {
    let (data, index) = build_index(300, 22);
    let q = data.series(0).to_vec();
    let ((), summary) = with_daemon(ServeConfig::default(), &index, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let health = client.request("GET", "/healthz", b"").expect("healthz");
        assert_eq!(health.status, 200);
        assert_eq!(health.body, b"ok\n");

        let _ = client.request("POST", "/query", &body_for("", &q)).unwrap();
        let bad = client
            .request("POST", "/query", b"{\"bogus\":1}")
            .expect("bad body transports fine");
        assert_eq!(bad.status, 400);
        let missing = client.request("GET", "/nope", b"").expect("404 route");
        assert_eq!(missing.status, 404);

        let metrics = client.request("GET", "/metrics", b"").expect("metrics");
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).expect("utf-8 metrics");
        assert!(text.contains("\nmessi_ready 1\n"), "{text}");
        assert!(text.contains("\nmessi_queries_total 1\n"), "{text}");
        assert!(
            text.contains("\nmessi_http_client_errors_total 2\n"),
            "{text}"
        );
        assert!(text.contains("\nmessi_query_alloc_events_total"), "{text}");
        assert!(
            text.contains("messi_query_phase_seconds_total{phase=\"tree_pass\"}"),
            "{text}"
        );
    });
    assert_eq!(summary.served, 1);
}

#[test]
fn drain_mode_sheds_every_query_and_load_smoke_reports_it() {
    let (data, index) = build_index(300, 23);
    let bodies: Vec<Vec<u8>> = (0..4).map(|i| body_for("", data.series(i))).collect();
    let (report, summary) = with_daemon(
        ServeConfig {
            admission: 0, // drain mode: deterministic 503s
            threads: 2,
            ..ServeConfig::default()
        },
        &index,
        |addr| {
            // Health stays green while every query sheds.
            let mut client = Client::connect(addr).expect("connect");
            let health = client.request("GET", "/healthz", b"").expect("healthz");
            assert_eq!(health.status, 200);
            let shed = client
                .request("POST", "/query", &bodies[0])
                .expect("shed response still transports");
            assert_eq!(shed.status, 503);
            assert_eq!(shed.retry_after, Some(1), "503 carries Retry-After");

            serve::run_load_smoke(
                addr,
                &bodies,
                &SmokeConfig {
                    clients: 2,
                    per_client: 3,
                    retry: false,
                    max_attempts: 1,
                },
            )
        },
    );
    assert_eq!(report.ok, 0);
    assert_eq!(report.shed, 6);
    assert_eq!(report.client_errors + report.server_errors, 0);
    assert_eq!(summary.served, 0);
    assert_eq!(summary.shed, 7, "direct probe + smoke queries all shed");
}

#[test]
fn concurrent_load_smoke_answers_everything_once_warm() {
    let (data, index) = build_index(500, 24);
    let bodies: Vec<Vec<u8>> = (0..8)
        .map(|i| body_for("\"objective\":\"knn\",\"k\":3,", data.series(i * 7)))
        .collect();
    let (report, summary) = with_daemon(
        ServeConfig {
            threads: 4,
            admission: 8,
            query_workers: 1,
            collect_breakdown: false,
            ..ServeConfig::default()
        },
        &index,
        |addr| {
            serve::run_load_smoke(
                addr,
                &bodies,
                &SmokeConfig {
                    clients: 4,
                    per_client: 10,
                    retry: true,
                    max_attempts: 50,
                },
            )
        },
    );
    assert_eq!(report.ok, 40, "{report:?}");
    assert_eq!(report.client_errors + report.server_errors, 0);
    assert_eq!(report.transport_errors, 0);
    assert_eq!(summary.served + summary.shed, 40 + report.retries);
    assert_eq!(summary.failures, 0);
    assert!(report.p50_us > 0 && report.p50_us <= report.p99_us);
}

#[test]
fn readiness_gates_queries_until_prewarm_finishes() {
    // A daemon that is bound but not yet serving refuses connections;
    // once serving, readiness flips only after prewarm. The in-process
    // route-level gating is covered by unit tests — here we check the
    // full socket path returns ready=200 exactly when wait_ready says so.
    let (_, index) = build_index(200, 25);
    let ((), summary) = with_daemon(ServeConfig::default(), &index, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let resp = client.request("GET", "/healthz", b"").expect("health");
        assert_eq!(resp.status, 200, "wait_ready returned → health is green");
    });
    assert_eq!(summary.served, 0);
}

fn ingest_body(rows: &[Vec<f32>]) -> Vec<u8> {
    let rows: Vec<String> = rows
        .iter()
        .map(|series| {
            let vals: Vec<String> = series.iter().map(|x| format!("{x:?}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    format!("{{\"series\":[{}]}}", rows.join(",")).into_bytes()
}

#[test]
fn ingest_endpoint_appends_durably_and_a_reboot_replays_the_log() {
    let log = std::env::temp_dir().join(format!("messi-daemon-ingest-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        200,
        27,
    ));
    let len = data.series_len();
    let fresh: Vec<Vec<f32>> = (0..2)
        .map(|s| {
            (0..len)
                .map(|i| ((i * 13 + s * 7) as f32 * 0.01).cos() * 3.0 + s as f32)
                .collect()
        })
        .collect();

    let (live, report) = DeltaIndex::with_log(build_sharded(&data), IngestOptions::default(), &log)
        .expect("fresh log");
    assert_eq!((report.batches, report.series), (0, 0));
    let ((), summary) = with_daemon(ServeConfig::default(), &live, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let resp = client
            .request("POST", "/ingest", &ingest_body(&fresh))
            .expect("ingest");
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = parse_json(&resp.body);
        assert_eq!(doc.get("accepted").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("total_series").unwrap().as_f64(), Some(202.0));

        // The appended series answers its own exact query at the global
        // position right after the base collection, over real sockets.
        let resp = client
            .request("POST", "/query", &body_for("", &fresh[1]))
            .expect("query ingested");
        let doc = parse_json(&resp.body);
        let answers = doc.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers[0].get("pos").unwrap().as_f64(), Some(201.0));
        assert_eq!(answers[0].get("distance").unwrap().as_f64(), Some(0.0));

        let metrics = client.request("GET", "/metrics", b"").expect("metrics");
        let text = String::from_utf8(metrics.body).expect("utf-8 metrics");
        assert!(text.contains("\nmessi_ingest_batches_total 1\n"), "{text}");
        assert!(text.contains("\nmessi_ingest_live_series 202\n"), "{text}");
    });
    assert_eq!(summary.served, 1);
    drop(live);

    // Reboot: same base collection + same log ⇒ the acknowledged series
    // are replayed and answer identically, without having been re-sent.
    let (rebooted, report) =
        DeltaIndex::with_log(build_sharded(&data), IngestOptions::default(), &log)
            .expect("reopen log");
    assert_eq!((report.batches, report.series), (1, 2));
    assert!(!report.torn);
    let (answers, _) = rebooted.query(&fresh[1], &QuerySpec::exact(), &QueryConfig::default());
    assert_eq!(answers[0].pos, 201);
    assert_eq!(answers[0].dist_sq, 0.0);
    let _ = std::fs::remove_file(&log);
}

#[test]
fn oversized_and_malformed_requests_do_not_kill_the_connection_pool() {
    let (data, index) = build_index(200, 26);
    let q = data.series(0).to_vec();
    let ((), summary) = with_daemon(ServeConfig::default(), &index, |addr| {
        // A request *declaring* a body over the cap gets 413 without the
        // body ever being sent or read, and the connection closes. Raw
        // socket: the server refuses before the body, so sending one
        // would just race the close.
        use std::io::{Read as _, Write as _};
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        write!(
            raw,
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            (1 << 20) + 1
        )
        .expect("send oversized declaration");
        let mut resp = String::new();
        raw.read_to_string(&mut resp).expect("read until close");
        assert!(
            resp.starts_with("HTTP/1.1 413 "),
            "expected 413, got: {resp}"
        );
        assert!(resp.contains("Connection: close"), "{resp}");

        // …but the daemon keeps serving fresh connections.
        let mut client = Client::connect(addr).expect("reconnect");
        let resp = client
            .request("POST", "/query", &body_for("", &q))
            .expect("query after 413");
        assert_eq!(resp.status, 200);

        // Unknown fields and wrong-length series are 400s, not failures.
        let resp = client
            .request("POST", "/query", b"{\"series\":[1,2,3],\"surprise\":1}")
            .expect("400");
        assert_eq!(resp.status, 400);
    });
    assert_eq!(summary.served, 1);
    assert_eq!(summary.failures, 0);
}
