//! Sharding is an execution detail, not a semantics change: a
//! [`ShardedIndex`] must answer **bit-identically** to one
//! [`MessiIndex`] over the same dataset, for every cell of the
//! Objective × Metric matrix, under both batch schedules, at shard
//! counts that exercise the no-op path (N = 1), the even split
//! (N = 2), and an uneven split with remainder shards (N = 7).
//!
//! Approximate search participates at ε = 0, δ = 1 — the corner where
//! the paper's guarantee makes it exact search bit for bit; at other
//! (ε, δ) the per-shard home leaves legitimately differ from the
//! single-index home leaf, so only the error *bound* (covered by the
//! statistical harness) is preserved, not the identity.
//!
//! Runs single-worker/single-queue so evaluation order is
//! deterministic and the comparison is exact, not statistical. The
//! same suite then proves the sharded snapshot round-trip preserves
//! answers and that corrupting any one shard file fails loudly,
//! naming the file.

use messi::prelude::*;
use messi::series::gen::{self, DatasetKind};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn deterministic() -> QueryConfig {
    QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::default()
    }
}

/// The full Objective × Metric matrix (approximate pinned at its exact
/// corner), for a dataset whose series length sets the DTW band.
fn matrix(series_len: usize, range_eps_sq: f32) -> Vec<(&'static str, QuerySpec)> {
    let params = DtwParams::paper_default(series_len);
    let ed = [
        ("exact/ed", QuerySpec::exact()),
        ("knn/ed", QuerySpec::knn(5)),
        ("range/ed", QuerySpec::range(range_eps_sq)),
        ("approx(0,1)/ed", QuerySpec::approximate(0.0, 1.0)),
    ];
    ed.iter()
        .flat_map(|(tag, spec)| {
            let dtw_tag: &'static str = match *tag {
                "exact/ed" => "exact/dtw",
                "knn/ed" => "knn/dtw",
                "range/ed" => "range/dtw",
                _ => "approx(0,1)/dtw",
            };
            [(*tag, *spec), (dtw_tag, spec.with_dtw(params))]
        })
        .collect()
}

fn assert_bit_identical(tag: &str, sharded: &[QueryAnswer], single: &[QueryAnswer]) {
    assert_eq!(
        sharded.len(),
        single.len(),
        "{tag}: result-set size diverged"
    );
    for (i, (a, b)) in sharded.iter().zip(single).enumerate() {
        assert_eq!(a.pos, b.pos, "{tag}[{i}]: position diverged");
        assert_eq!(
            a.dist_sq.to_bits(),
            b.dist_sq.to_bits(),
            "{tag}[{i}]: dist_sq bits diverged ({} vs {})",
            a.dist_sq,
            b.dist_sq
        );
    }
}

#[test]
fn every_objective_metric_schedule_cell_is_bit_identical_to_a_single_index() {
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 600, 41));
    let config = IndexConfig::for_tests();
    let qconfig = deterministic();
    let (single, _) = MessiIndex::build(Arc::clone(&data), &config);
    let reference = QueryExecutor::new(&single);
    let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 41);

    // A radius wide enough for a non-trivial ED result set (and, being
    // larger than DTW ≤ ED distances, for DTW too).
    let (nn, _) = reference.run_one(queries.series(0), &QuerySpec::exact(), &qconfig);
    let eps_sq = nn[0].dist_sq * 4.0 + 1.0;
    let specs = matrix(data.series_len(), eps_sq);

    for n in SHARD_COUNTS {
        let (sharded, _) = ShardedIndex::build(Arc::clone(&data), n, &config);
        let exec = ShardedExecutor::new(&sharded);
        for (tag, spec) in &specs {
            // Per-query path.
            for q in queries.iter() {
                let (a, _) = exec.run_one(q, spec, &qconfig);
                let (b, _) = reference.run_one(q, spec, &qconfig);
                assert_bit_identical(&format!("N={n} {tag} run_one"), &a, &b);
            }
            // Both batch schedules.
            for schedule in [
                Schedule::IntraQuery,
                Schedule::InterQuery { parallelism: 2 },
            ] {
                let (batch, _) = exec.run_batch(&queries, spec, schedule, &qconfig);
                for (qi, a) in batch.iter().enumerate() {
                    let (b, _) = reference.run_one(queries.series(qi), spec, &qconfig);
                    assert_bit_identical(&format!("N={n} {tag} {schedule:?} q{qi}"), a, &b);
                }
            }
        }
    }
}

#[test]
fn shard_positions_partition_the_dataset() {
    // Structural sanity behind the bit-identity: shard offsets tile
    // 0..len with the documented remainder-first split, so global
    // positions are well-defined at every shard count.
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 101, 42));
    for n in SHARD_COUNTS {
        let (index, _) = ShardedIndex::build(Arc::clone(&data), n, &IndexConfig::for_tests());
        assert_eq!(index.num_shards(), n);
        let mut covered = 0u64;
        for s in 0..n {
            assert_eq!(index.shard_offset(s), covered, "N={n} shard {s} offset");
            covered += index.shard(s).dataset().len() as u64;
        }
        assert_eq!(covered, data.len() as u64, "N={n} shards must tile");
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "messi-sharded-equivalence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sharded_snapshot_round_trip_preserves_answers() {
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 43));
    let (index, _) = ShardedIndex::build(Arc::clone(&data), 3, &IndexConfig::for_tests());
    let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 43);
    let qconfig = deterministic();
    let spec = QuerySpec::knn(4);

    let dir = scratch_dir("roundtrip");
    save_sharded(&index, &dir).expect("save sharded snapshot");
    let loaded = load_sharded(&dir, Arc::clone(&data)).expect("load sharded snapshot");
    assert_eq!(loaded.num_shards(), 3);

    let before = ShardedExecutor::new(&index);
    let after = ShardedExecutor::new(&loaded);
    for q in queries.iter() {
        let (a, _) = before.run_one(q, &spec, &qconfig);
        let (b, _) = after.run_one(q, &spec, &qconfig);
        assert_bit_identical("round-trip knn", &a, &b);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupting_any_one_shard_file_fails_loudly_naming_it() {
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 200, 44));
    let (index, _) = ShardedIndex::build(Arc::clone(&data), 2, &IndexConfig::for_tests());
    let dir = scratch_dir("corrupt");
    save_sharded(&index, &dir).expect("save sharded snapshot");

    for victim in ["shard-0.messi", "shard-1.messi"] {
        let path = dir.join(victim);
        let mut bytes = std::fs::read(&path).expect("read shard file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupted shard");

        let err = load_sharded(&dir, Arc::clone(&data))
            .err()
            .unwrap_or_else(|| panic!("corrupted {victim} must not load"));
        let msg = err.to_string();
        assert!(msg.contains(victim), "error must name {victim}: {msg}");

        bytes[mid] ^= 0xFF; // restore for the next victim
        std::fs::write(&path, &bytes).expect("restore shard");
    }
    // Restored bytes load cleanly again — the corruption detector keyed
    // on content, not on mtime or size.
    load_sharded(&dir, data).expect("restored snapshot loads");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn approximate_other_corners_stay_within_their_bound_when_sharded() {
    // Outside the exact corner bit-identity is not promised, but the
    // (1+ε) guarantee at δ=1 must still hold against the true 1-NN.
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 45));
    let config = IndexConfig::for_tests();
    let qconfig = deterministic();
    let (single, _) = MessiIndex::build(Arc::clone(&data), &config);
    let reference = QueryExecutor::new(&single);
    let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 45);
    let epsilon = 0.25f32;

    for n in SHARD_COUNTS {
        let (sharded, _) = ShardedIndex::build(Arc::clone(&data), n, &config);
        let exec = ShardedExecutor::new(&sharded);
        for q in queries.iter() {
            let (truth, _) = reference.run_one(q, &QuerySpec::exact(), &qconfig);
            let (approx, _) = exec.run_one(q, &QuerySpec::approximate(epsilon, 1.0), &qconfig);
            let bound = truth[0].dist_sq.sqrt() * (1.0 + epsilon);
            assert!(
                approx[0].dist_sq.sqrt() <= bound + 1e-4,
                "N={n}: δ=1 answer {} exceeds (1+ε) bound {bound}",
                approx[0].dist_sq.sqrt()
            );
        }
    }
}

#[test]
fn sharding_respects_forced_scalar_kernels() {
    // The MESSI_FORCE_SCALAR CI lane runs this whole file; this test
    // additionally pins both kernels explicitly so the property is
    // checked even in the default lane.
    let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 250, 46));
    let config = IndexConfig::for_tests();
    let (single, _) = MessiIndex::build(Arc::clone(&data), &config);
    let (sharded, _) = ShardedIndex::build(Arc::clone(&data), 2, &config);
    let reference = QueryExecutor::new(&single);
    let exec = ShardedExecutor::new(&sharded);
    let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 46);

    for kernel in [Kernel::Scalar, Kernel::Simd] {
        let qconfig = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            kernel,
            ..QueryConfig::default()
        };
        for q in queries.iter() {
            let (a, _) = exec.run_one(q, &QuerySpec::exact(), &qconfig);
            let (b, _) = reference.run_one(q, &QuerySpec::exact(), &qconfig);
            assert_bit_identical(&format!("{kernel:?}"), &a, &b);
        }
    }
}
