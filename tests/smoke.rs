//! Workspace smoke test: the full facade path — generate data with
//! `messi::series::gen`, build a `MessiIndex`, search it — agrees with a
//! brute-force scan. This is the one test that must always run in
//! tier-1 CI; everything it touches crosses every crate boundary
//! (facade → core → sax/series/sync).

use messi::prelude::*;
use std::sync::Arc;

#[test]
fn facade_build_and_search_match_brute_force() {
    let data = Arc::new(messi::series::gen::generate(
        DatasetKind::RandomWalk,
        2_000,
        7,
    ));
    let (index, build_stats) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    assert!(build_stats.num_leaves > 0);

    let queries = messi::series::gen::queries::generate_queries(DatasetKind::RandomWalk, 10, 7);
    for q in queries.iter() {
        let (answer, query_stats) = index.search(q, &QueryConfig::default());
        let (bf_pos, bf_dist) = data.nearest_neighbor_brute_force(q);

        assert_eq!(
            answer.pos as usize, bf_pos,
            "index answer must be the brute-force nearest neighbor"
        );
        assert!(
            (answer.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
            "distance mismatch: index {} vs brute force {bf_dist}",
            answer.dist_sq
        );
        assert!(
            query_stats.real_distance_calcs < data.len() as u64,
            "index must prune at least part of the collection"
        );
    }
}
