//! Property tests for the substrate layers: SAX words, root keys, queue
//! ordering, work dispensing, envelopes, dataset shapes, and file I/O —
//! with arbitrary (not generator-shaped) inputs.

use messi::sax::breakpoints::{region_lower, region_upper, symbol_max_card};
use messi::sax::root_key::{node_word_for_root_key, root_key};
use messi::sax::word::{SaxWord, CARD_BITS};
use messi::series::distance::dtw::DtwParams;
use messi::series::distance::lb_keogh::Envelope;
use messi::series::znorm::znormalized;
use messi::series::Dataset;
use messi::sync::{ConcurrentMinQueue, Dispenser, QueueSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn symbol_regions_partition_the_real_line(v in -50.0f32..50.0) {
        let s = symbol_max_card(v) as u16;
        let bits = CARD_BITS as u8;
        // v lies in its region.
        prop_assert!(region_lower(s, bits) <= v);
        prop_assert!(v <= region_upper(s, bits));
        // And regions at every coarser cardinality contain the finer one.
        for b in 1..bits {
            let prefix = s >> (bits - b);
            prop_assert!(region_lower(prefix, b) <= region_lower(s, bits));
            prop_assert!(region_upper(prefix, b) >= region_upper(s, bits));
        }
    }

    #[test]
    fn root_key_roundtrips_through_node_word(
        symbols in proptest::collection::vec(0u8..=255, 1..=16),
    ) {
        let segments = symbols.len();
        let w = SaxWord::new(&symbols);
        let key = root_key(&w, segments);
        prop_assert!(key < (1usize << segments));
        let node = node_word_for_root_key(key, segments);
        prop_assert!(node.contains(&w, segments));
        // Any other root word does not contain it.
        let other = node_word_for_root_key(key ^ 1, segments);
        prop_assert!(!other.contains(&w, segments));
    }

    #[test]
    fn refinement_chains_partition_words(
        symbols in proptest::collection::vec(0u8..=255, 4),
        path in proptest::collection::vec((0usize..4, proptest::bool::ANY), 0..12),
    ) {
        // Follow an arbitrary refinement path containing the word; at
        // every step exactly one child contains it.
        let w = SaxWord::new(&symbols);
        let mut node = node_word_for_root_key(root_key(&w, 4), 4);
        for (seg, _) in path {
            if node.bits(seg) as usize >= CARD_BITS {
                continue;
            }
            let (zero, one) = node.refine(seg);
            let in_zero = zero.contains(&w, 4);
            let in_one = one.contains(&w, 4);
            prop_assert!(in_zero ^ in_one, "exactly one child must contain the word");
            node = if in_one { one } else { zero };
        }
    }

    #[test]
    fn queue_pops_ascending_regardless_of_insertion_order(
        keys in proptest::collection::vec(0.0f32..1e6, 1..200),
    ) {
        let q = ConcurrentMinQueue::new();
        for (i, &k) in keys.iter().enumerate() {
            q.push(k, i);
        }
        let mut last = f32::NEG_INFINITY;
        let mut count = 0;
        while let Some((k, _)) = q.pop_min() {
            prop_assert!(k >= last);
            last = k;
            count += 1;
        }
        prop_assert_eq!(count, keys.len());
    }

    #[test]
    fn round_robin_never_skews_queues_by_more_than_one(
        nq in 1usize..32,
        inserts in 0usize..500,
    ) {
        let set: QueueSet<usize> = QueueSet::new(nq);
        let mut cursor = 0;
        for i in 0..inserts {
            set.push_round_robin(&mut cursor, i as f32, i);
        }
        let lens: Vec<usize> = (0..nq).map(|i| set.queue(i).len()).collect();
        let min = lens.iter().min().copied().unwrap_or(0);
        let max = lens.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "round robin must stay balanced: {lens:?}");
        prop_assert_eq!(lens.iter().sum::<usize>(), inserts);
    }

    #[test]
    fn dispenser_is_a_partition(limit in 0usize..10_000) {
        let d = Dispenser::new(limit);
        let mut seen = vec![false; limit];
        while let Some(i) = d.next() {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn envelope_is_monotone_in_window(
        series in proptest::collection::vec(-10.0f32..10.0, 8..64),
        w1 in 0usize..8,
        w2 in 8usize..32,
    ) {
        // A wider window gives a wider (or equal) envelope everywhere.
        let narrow = Envelope::new(&series, DtwParams { window: w1 });
        let wide = Envelope::new(&series, DtwParams { window: w2 });
        for i in 0..series.len() {
            prop_assert!(wide.upper[i] >= narrow.upper[i] - 1e-6);
            prop_assert!(wide.lower[i] <= narrow.lower[i] + 1e-6);
        }
    }

    #[test]
    fn dataset_chunks_cover_each_position_once(
        n in 1usize..500,
        chunk in 1usize..600,
    ) {
        let ds = Dataset::from_flat(vec![0.0; n * 4], 4).unwrap();
        let chunks = ds.chunks(chunk);
        let mut covered = vec![0u32; n];
        for (s, e) in chunks {
            prop_assert!(s < e && e <= n);
            for slot in &mut covered[s..e] {
                *slot += 1;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c == 1));
    }

    #[test]
    fn znorm_is_idempotent(
        series in proptest::collection::vec(-1e4f32..1e4, 4..128),
    ) {
        let once = znormalized(&series);
        let twice = znormalized(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() <= 2e-2 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}

proptest! {
    // File I/O touches disk: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dataset_file_roundtrip_for_arbitrary_shapes(
        series_len in 1usize..64,
        count in 1usize..32,
        seed in 0u64..1000,
    ) {
        let values: Vec<f32> = (0..series_len * count)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f32 / 7.0 - 50.0)
            .collect();
        let ds = Dataset::from_flat(values, series_len).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!(
            "messi-prop-io-{}-{series_len}-{count}-{seed}.mds",
            std::process::id()
        ));
        messi::series::io::write_dataset(&ds, &path).unwrap();
        let back = messi::series::io::read_dataset(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(ds, back);
    }
}
